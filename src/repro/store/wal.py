"""Append-only write-ahead log of quad deltas.

Concurrency: single-writer
Graph-writes: none

The WAL is the durability half of the MVCC quad-store
(:mod:`repro.store.engine`): every committed generation appends one
*record* before the new state is published, so replay after a crash
reconstructs exactly the committed history. The format is line-oriented
UTF-8 text reusing the N-Quads term serialization that snapshot files
use, which keeps the two on-disk artifacts inspectable with the same
tooling::

    B <generation> <nops>
    + <subject> <predicate> <object> [<graph>] .
    - <subject> <predicate> <object> [<graph>] .
    C <generation> <crc32 as 8 hex digits>

A record is only *committed* once its ``C`` line is present with the
right generation and a CRC-32 matching the op lines. :func:`scan_wal`
accepts records strictly in order and stops at the first malformed,
uncommitted or CRC-failing record: everything after that point is a
*torn tail* (a crash mid-append) and is reported so the engine can
truncate it away — a partially written batch is never half-applied.

The engine serializes ``append``/``reset`` calls under its commit lock;
this module takes no locks of its own. The file handle is opened once
at construction (never under a lock) and ``reset`` truncates in place
through the same handle.

Durability guarantee: ``reset`` and :func:`truncate_wal` fsync the
truncated file *and then the parent directory*, so a power loss after
either cannot resurrect the discarded bytes — without the directory
fsync the filesystem may replay the metadata journal without the
truncate and recovery would re-apply ops that a checkpoint already
folded into a snapshot (or re-trust a torn tail that was already cut).
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, List, Optional, Sequence, Tuple, Union

from ..rdf.nquads import Quad, parse_nquads_line, serialize_quad
from ..rdf.ntriples import NTriplesError
from .persistence import fsync_directory

__all__ = [
    "OP_ADD",
    "OP_REMOVE",
    "WalBatch",
    "WalOp",
    "WalScan",
    "WriteAheadLog",
    "scan_wal",
    "truncate_wal",
]

#: Op codes as they appear at the start of WAL op lines.
OP_ADD = "+"
OP_REMOVE = "-"

#: One logged operation: ``("+" | "-", quad)``.
WalOp = Tuple[str, Quad]


@dataclass
class WalBatch:
    """One committed record: a generation and its ordered quad ops."""

    generation: int
    ops: List[WalOp]


@dataclass
class WalScan:
    """Result of scanning a WAL file up to the last committed record.

    ``valid_bytes`` is the prefix length holding only committed
    records; anything beyond it (``torn_bytes``) must be truncated
    before the log is appended to again.
    """

    batches: List[WalBatch] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0
    torn_reason: Optional[str] = None

    @property
    def last_generation(self) -> Optional[int]:
        return self.batches[-1].generation if self.batches else None


def _crc_line(digest: int, line: str) -> int:
    return zlib.crc32(line.encode("utf-8"), digest)


def scan_wal(path: Union[str, Path]) -> WalScan:
    """Parse every committed record of ``path``; tolerate a torn tail.

    Never raises on bad content: corruption anywhere marks the rest of
    the file torn (with a reason) rather than failing recovery.
    """
    path = Path(path)
    scan = WalScan()
    if not path.exists():
        return scan
    data = path.read_bytes()
    total = len(data)

    # (raw line bytes, byte offset of the line's end incl. newline)
    spans: List[Tuple[bytes, int]] = []
    cursor = 0
    pieces = data.split(b"\n")
    for j, raw in enumerate(pieces):
        cursor += len(raw) + (1 if j < len(pieces) - 1 else 0)
        spans.append((raw, cursor))

    def fail(reason: str) -> WalScan:
        scan.torn_bytes = total - scan.valid_bytes
        scan.torn_reason = reason
        return scan

    def decode(raw: bytes) -> Optional[str]:
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            return None

    i = 0
    while i < len(spans):
        raw, end = spans[i]
        text = decode(raw)
        if text is None:
            return fail("undecodable bytes")
        header = text.strip()
        if not header:
            # blank line between records (or the empty fragment after a
            # final newline): consume as valid padding
            scan.valid_bytes = end
            i += 1
            continue
        parts = header.split()
        if len(parts) != 3 or parts[0] != "B":
            return fail(f"expected batch header, got {header[:40]!r}")
        try:
            generation = int(parts[1])
            nops = int(parts[2])
        except ValueError:
            return fail("malformed batch header")
        if generation <= 0 or nops < 0:
            return fail("malformed batch header")
        last = scan.last_generation
        if last is not None and generation <= last:
            return fail("non-monotonic generation")

        digest = 0
        ops: List[WalOp] = []
        j = i + 1
        for _ in range(nops):
            if j >= len(spans):
                return fail("incomplete record")
            op_raw, _ = spans[j]
            op_text = decode(op_raw)
            if op_text is None:
                return fail("undecodable bytes")
            op_line = op_text.rstrip("\r")
            if (
                len(op_line) < 2
                or op_line[0] not in (OP_ADD, OP_REMOVE)
                or op_line[1] != " "
            ):
                return fail("malformed op line")
            try:
                quad = parse_nquads_line(op_line[2:], lineno=j + 1)
            except (NTriplesError, ValueError):
                return fail("unparseable op quad")
            digest = _crc_line(digest, op_line)
            ops.append((op_line[0], quad))
            j += 1

        if j >= len(spans):
            return fail("incomplete record")
        commit_raw, commit_end = spans[j]
        commit_text = decode(commit_raw)
        if commit_text is None:
            return fail("undecodable bytes")
        cparts = commit_text.strip().split()
        if len(cparts) != 3 or cparts[0] != "C":
            return fail("missing commit marker")
        expected = f"{digest & 0xFFFFFFFF:08x}"
        if (
            cparts[1] != str(generation)
            or len(cparts[2]) != 8
            or cparts[2].lower() != expected
        ):
            return fail("commit marker mismatch")

        scan.batches.append(WalBatch(generation, ops))
        scan.valid_bytes = commit_end
        i = j + 1

    scan.torn_bytes = total - scan.valid_bytes
    return scan


def truncate_wal(path: Union[str, Path], valid_bytes: int) -> int:
    """Cut a torn tail off ``path``; returns the bytes removed."""
    path = Path(path)
    if not path.exists():
        return 0
    size = path.stat().st_size
    if valid_bytes >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())
    # make the truncate itself durable (see the module docstring)
    fsync_directory(path.parent)
    return size - valid_bytes


class WriteAheadLog:
    """Single-writer append handle over one WAL file.

    The engine calls :meth:`append` under its commit lock; the handle
    is opened eagerly here (at store construction, outside any lock)
    and reused for every append and reset. With ``sync=True`` every
    record is ``fsync``-ed before the commit is acknowledged —
    crash-durable at the cost of one disk flush per batch; the default
    flushes to the OS only (survives process death, not power loss).
    """

    def __init__(self, path: Union[str, Path], *, sync: bool = False) -> None:
        self.path = Path(path)
        self.sync = sync
        #: records / bytes appended through this handle (this process).
        self.records = 0
        self.bytes_written = 0
        #: seconds the last ``append`` spent in ``os.fsync`` (0.0 when
        #: ``sync=False``) — read by the engine's telemetry after each
        #: commit so fsync stalls are attributable without this module
        #: importing the metrics registry.
        self.last_fsync_seconds = 0.0
        self._handle: Optional[IO[bytes]] = open(self.path, "ab")
        #: bytes in the log since the last reset — what a restart would
        #: have to replay; maintained in memory so the engine's
        #: checkpoint policy never stats the file on the commit path.
        self.tail_bytes = self._handle.tell()
        if self._handle.tell() > 0:
            # Guarantee appends start on a line boundary even when a
            # previous process died between a commit marker and its
            # newline (scan accepts such a record; appending to it
            # directly would corrupt it).
            with open(self.path, "rb") as probe:
                probe.seek(-1, os.SEEK_END)
                trailing = probe.read(1)
            if trailing != b"\n":
                self._handle.write(b"\n")
                self._handle.flush()
                self.tail_bytes += 1

    def append(self, generation: int, ops: Sequence[WalOp]) -> int:
        """Append one committed batch; returns the bytes written."""
        if self._handle is None:
            raise ValueError(f"WAL {self.path} is closed")
        op_lines = [f"{op} {serialize_quad(quad)}" for op, quad in ops]
        digest = 0
        for line in op_lines:
            digest = _crc_line(digest, line)
        record = "".join(
            [f"B {generation} {len(op_lines)}\n"]
            + [line + "\n" for line in op_lines]
            + [f"C {generation} {digest & 0xFFFFFFFF:08x}\n"]
        )
        payload = record.encode("utf-8")
        self._handle.write(payload)
        self._handle.flush()
        if self.sync:
            fsync_began = time.perf_counter()
            os.fsync(self._handle.fileno())
            self.last_fsync_seconds = time.perf_counter() - fsync_began
        else:
            self.last_fsync_seconds = 0.0
        self.records += 1
        self.bytes_written += len(payload)
        self.tail_bytes += len(payload)
        return len(payload)

    def reset(self) -> None:
        """Empty the log (after its content was folded into a snapshot).

        Truncates through the already-open handle — no file open happens
        here, so the engine may call this under its commit lock. The
        truncate is always fsync-ed (file, then parent directory) even
        for ``sync=False`` logs: a resurrected pre-checkpoint tail
        under freshly appended post-checkpoint records would corrupt
        the log, and resets are rare (one per checkpoint).
        """
        if self._handle is None:
            raise ValueError(f"WAL {self.path} is closed")
        self._handle.flush()
        self._handle.truncate(0)
        self._handle.seek(0)
        os.fsync(self._handle.fileno())
        fsync_directory(self.path.parent)
        self.tail_bytes = 0

    def size(self) -> int:
        """Current on-disk size of the log file."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteAheadLog({str(self.path)!r}, records={self.records})"
