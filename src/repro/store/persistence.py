"""Snapshot files and recovery bookkeeping for the quad-store.

Concurrency: single-threaded
Graph-writes: the freshly loaded private base graphs only

A *snapshot* is the full store content at one generation, written as
canonical N-Quads (sorted lines, trailing newline) to
``snapshot-<generation, 9 digits>.nq``. Snapshots are written atomically
— serialized to a temp file, flushed, ``fsync``-ed, renamed into place,
then the *parent directory* is ``fsync``-ed — so a crash mid-checkpoint
leaves the previous snapshot intact, and a power loss after the rename
cannot un-rename it (the rename itself lives in the directory entry,
which only the directory fsync makes durable).
Restart cost is therefore ``O(snapshot + WAL tail)`` instead of
``O(entire history)``: the engine loads the newest readable snapshot and
replays only the WAL records with a later generation.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import NamespaceManager
from ..rdf.nquads import parse_nquads
from ..rdf.terms import URIRef

__all__ = [
    "WAL_FILENAME",
    "RecoveryReport",
    "fsync_directory",
    "load_snapshot",
    "prune_snapshots",
    "snapshot_files",
    "snapshot_path",
    "write_snapshot",
]

#: The single WAL file inside a store directory.
WAL_FILENAME = "wal.log"

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{9})\.nq$")

#: Identifier given to the default-context base graph.
DEFAULT_GRAPH_IRI = URIRef("urn:graph:default")


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entries (renames, truncates) to disk.

    File-content fsyncs do not make *namespace* operations durable: a
    rename or truncate lives in the directory, and a power loss can
    roll it back unless the directory itself is fsync-ed. Platforms
    whose filesystems cannot open directories (Windows) silently skip —
    there the rename durability is the filesystem's business.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platforms
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def snapshot_path(directory: Path, generation: int) -> Path:
    return directory / f"snapshot-{generation:09d}.nq"


def snapshot_files(directory: Path) -> List[Tuple[int, Path]]:
    """All snapshot files in ``directory``, ascending by generation."""
    found: List[Tuple[int, Path]] = []
    if not directory.is_dir():
        return found
    for entry in directory.iterdir():
        match = _SNAPSHOT_RE.match(entry.name)
        if match is not None:
            found.append((int(match.group(1)), entry))
    found.sort()
    return found


def write_snapshot(
    directory: Path, generation: int, lines: Iterable[str]
) -> Path:
    """Atomically write canonical N-Quads ``lines`` for ``generation``.

    ``lines`` are statement strings without newlines; they are sorted
    here so equal store contents always produce byte-identical files.
    """
    final = snapshot_path(directory, generation)
    tmp = directory / (final.name + ".tmp")
    ordered = sorted(lines)
    text = "\n".join(ordered) + ("\n" if ordered else "")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    # the rename is only durable once the directory entry is flushed
    fsync_directory(directory)
    return final


def prune_snapshots(directory: Path, keep_generation: int) -> List[Path]:
    """Delete snapshot files older than ``keep_generation``."""
    removed: List[Path] = []
    for generation, path in snapshot_files(directory):
        if generation < keep_generation:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                continue
            removed.append(path)
    return removed


def load_snapshot(
    path: Path, namespaces: Optional[NamespaceManager] = None
) -> Tuple[Dict[Optional[URIRef], Graph], int]:
    """Parse a snapshot file into per-context base graphs.

    Returns ``(contexts, quad_count)`` where the ``None`` key is the
    default context. Raises on malformed content — the engine treats
    an unreadable snapshot as absent and falls back to an older one.
    """
    namespaces = namespaces or NamespaceManager()
    contexts: Dict[Optional[URIRef], Graph] = {}
    count = 0
    for s, p, o, g in parse_nquads(path.read_text(encoding="utf-8")):
        graph = contexts.get(g)
        if graph is None:
            graph = Graph(g if g is not None else DEFAULT_GRAPH_IRI,
                          namespaces)
            contexts[g] = graph
        graph.insert((s, p, o))
        count += 1
    return contexts, count


@dataclass
class RecoveryReport:
    """What one store open found on disk and did about it."""

    directory: str
    snapshot_path: Optional[str] = None
    snapshot_generation: int = 0
    snapshot_quads: int = 0
    #: snapshots that failed to parse and were skipped (newest first)
    snapshot_errors: List[str] = field(default_factory=list)
    batches_replayed: int = 0
    ops_replayed: int = 0
    torn_bytes: int = 0
    torn_reason: Optional[str] = None
    #: the generation the store resumed at
    generation: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing had to be repaired or skipped."""
        return self.torn_bytes == 0 and not self.snapshot_errors

    def as_dict(self) -> dict:
        return {
            "directory": self.directory,
            "snapshot": self.snapshot_path,
            "snapshot_generation": self.snapshot_generation,
            "snapshot_quads": self.snapshot_quads,
            "snapshot_errors": list(self.snapshot_errors),
            "batches_replayed": self.batches_replayed,
            "ops_replayed": self.ops_replayed,
            "torn_bytes": self.torn_bytes,
            "torn_reason": self.torn_reason,
            "generation": self.generation,
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [
            f"directory:         {self.directory}",
            f"snapshot:          {self.snapshot_path or '(none)'}",
            f"snapshot gen:      {self.snapshot_generation}",
            f"batches replayed:  {self.batches_replayed}"
            f" ({self.ops_replayed} ops)",
            f"resumed at gen:    {self.generation}",
        ]
        if self.torn_bytes:
            lines.append(
                f"torn tail:         {self.torn_bytes} bytes truncated"
                f" ({self.torn_reason})"
            )
        for error in self.snapshot_errors:
            lines.append(f"skipped snapshot:  {error}")
        if self.clean:
            lines.append("state:             clean")
        return "\n".join(lines)
