"""repro — reproduction of "LODifying personal content sharing" (EDBT 2012).

A complete, self-contained Python implementation of the paper's platform:

* :mod:`repro.rdf` — RDF term model and indexed triple store.
* :mod:`repro.sparql` — SPARQL engine with Virtuoso-style geospatial and
  full-text builtins (``bif:st_intersects``, ``bif:contains``).
* :mod:`repro.relational` — mini relational engine (the Coppermine-style
  gallery database the platform was built on).
* :mod:`repro.d2r` — D2R-style relational→RDF mapping and dumping.
* :mod:`repro.nlp` — language detection, morphological analysis and string
  similarity (the FreeLing / Text_LanguageDetect stand-ins).
* :mod:`repro.context` — context management platform simulation (location,
  nearby buddies, GSM cells, triple tags).
* :mod:`repro.lod` — deterministic synthetic DBpedia / Geonames /
  LinkedGeoData datasets.
* :mod:`repro.resolvers` — the semantic brokering component and its
  resolvers (DBpedia, Geonames, Sindice, Evri, Zemanta).
* :mod:`repro.core` — the paper's contribution: the automatic semantic
  annotation pipeline, location/POI analysis, semantic virtual albums and
  the LOD mashup.
* :mod:`repro.platform` — the UGC sharing platform itself.
* :mod:`repro.federation` — the paper's future-work federated architecture.
* :mod:`repro.workloads` — synthetic workloads and the gold corpus used by
  the experiments in EXPERIMENTS.md.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
