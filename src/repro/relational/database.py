"""The database: table registry plus SQL execution.

:meth:`Database.execute` runs one parsed/textual SQL statement; SELECTs
return a :class:`ResultSet`. Joins are evaluated left-to-right; inner
equi-joins use a hash join on the ON columns, LEFT JOINs preserve
unmatched left rows with NULLs.
"""

from __future__ import annotations

import re
from typing import (
    Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple,
)

from .errors import IntegrityError, SchemaError, SqlSyntaxError
from .sql import (
    And,
    ColumnRef,
    Comparison,
    CreateTable,
    Delete,
    InList,
    Insert,
    IsNull,
    JoinClause,
    Not,
    Or,
    Select,
    Update,
    Value,
    parse_sql,
)
from .table import Column, ColumnType, Row, Table

#: A joined row environment: alias → row dict.
Env = Dict[str, Row]


class ResultSet:
    """Materialized SELECT output: ordered column names + row tuples."""

    def __init__(self, columns: List[str], rows: List[Tuple]) -> None:
        self.columns = columns
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Tuple:
        return self.rows[index]

    def dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() needs exactly one row and column, have "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class Database:
    """A named collection of tables with a SQL front end."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}

    # ------------------------------------------------------------------
    # Programmatic API
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: Iterable[Column]) -> Table:
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, columns)
        for column in table.columns:
            if column.references is not None:
                ref_table, ref_column = column.references
                if ref_table not in self.tables:
                    raise SchemaError(
                        f"{name}.{column.name} references unknown table "
                        f"{ref_table!r}"
                    )
                self.tables[ref_table].column(ref_column)
        self.tables[name] = table
        return table

    def table(self, name: str) -> Table:
        if name not in self.tables:
            raise SchemaError(f"no such table: {name!r}")
        return self.tables[name]

    def insert(self, table_name: str, **values: Any) -> Row:
        """Insert with FK enforcement; returns the stored row."""
        table = self.table(table_name)
        for column in table.columns:
            if column.references is None or column.name not in values:
                continue
            value = values[column.name]
            if value is None:
                continue
            ref_table, ref_column = column.references
            target = self.table(ref_table)
            if target.primary_key and target.primary_key.name == ref_column:
                exists = target.get(value) is not None
            else:
                exists = any(
                    row[ref_column] == value for row in target.rows
                )
            if not exists:
                raise IntegrityError(
                    f"{table_name}.{column.name}={value!r} references "
                    f"missing {ref_table}.{ref_column}"
                )
        return table.insert(values)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def transaction(self) -> "_Transaction":
        """Snapshot-based transaction scope::

            with db.transaction():
                db.execute("INSERT ...")
                db.execute("UPDATE ...")  # an exception rolls both back

        Commits on clean exit, restores every table (and drops tables
        created inside the scope) on exception.
        """
        return _Transaction(self)

    # ------------------------------------------------------------------
    # SQL execution
    # ------------------------------------------------------------------
    def execute(self, statement) -> Optional[ResultSet]:
        """Execute SQL text or a parsed statement."""
        if isinstance(statement, str):
            statement = parse_sql(statement)
        if isinstance(statement, CreateTable):
            self._execute_create(statement)
            return None
        if isinstance(statement, Insert):
            self._execute_insert(statement)
            return None
        if isinstance(statement, Select):
            return self._execute_select(statement)
        if isinstance(statement, Update):
            table = self.table(statement.table)
            predicate = self._row_predicate(statement.where, table.name)
            table.update_where(predicate, dict(statement.changes))
            return None
        if isinstance(statement, Delete):
            table = self.table(statement.table)
            predicate = self._row_predicate(statement.where, table.name)
            table.delete_where(predicate)
            return None
        raise SqlSyntaxError(f"unsupported statement: {statement!r}")

    def _execute_create(self, statement: CreateTable) -> None:
        columns = [
            Column(
                name=definition.name,
                type=ColumnType.from_sql(definition.type_name),
                primary_key=definition.primary_key,
                nullable=not (definition.not_null or definition.primary_key),
                unique=definition.unique,
                autoincrement=definition.autoincrement,
                default=definition.default,
                references=definition.references,
            )
            for definition in statement.columns
        ]
        self.create_table(statement.table, columns)

    def _execute_insert(self, statement: Insert) -> None:
        table = self.table(statement.table)
        columns = statement.columns or table.column_names
        for row_values in statement.rows:
            if len(row_values) != len(columns):
                raise SqlSyntaxError(
                    f"INSERT arity mismatch: {len(columns)} columns, "
                    f"{len(row_values)} values"
                )
            self.insert(statement.table, **dict(zip(columns, row_values)))

    # ------------------------------------------------------------------
    # SELECT evaluation
    # ------------------------------------------------------------------
    def _execute_select(self, statement: Select) -> ResultSet:
        base = self.table(statement.table)
        envs: List[Env] = [
            {statement.alias: row} for row in base.scan()
        ]
        for join in statement.joins:
            envs = self._apply_join(envs, join)
        if statement.where is not None:
            predicate = self._env_predicate(statement.where)
            envs = [env for env in envs if predicate(env)]
        if statement.order_by:
            for ref, descending in reversed(statement.order_by):
                envs.sort(
                    key=lambda env, r=ref: _sort_key(
                        self._lookup(env, r)
                    ),
                    reverse=descending,
                )

        columns, extractor = self._projection(statement, envs)
        if any(item.count for item in statement.items):
            count_item = next(i for i in statement.items if i.count)
            if count_item.ref is None:
                count = len(envs)
            else:
                count = sum(
                    1
                    for env in envs
                    if self._lookup(env, count_item.ref) is not None
                )
            rows: List[Tuple] = [(count,)]
            columns = [count_item.alias or "count"]
        else:
            rows = [extractor(env) for env in envs]
            if statement.distinct:
                seen = set()
                unique: List[Tuple] = []
                for row in rows:
                    if row not in seen:
                        seen.add(row)
                        unique.append(row)
                rows = unique
        if statement.offset:
            rows = rows[statement.offset :]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        return ResultSet(columns, rows)

    def _apply_join(self, envs: List[Env], join: JoinClause) -> List[Env]:
        right_table = self.table(join.table)
        right_rows = list(right_table.scan())
        # determine which side of ON belongs to the joined table
        if join.left.table == join.alias:
            probe_ref, build_ref = join.right, join.left
        else:
            probe_ref, build_ref = join.left, join.right
        if build_ref.table not in (None, join.alias) or not \
                right_table.has_column(build_ref.column):
            raise SchemaError(
                f"ON clause column {build_ref} does not belong to "
                f"joined table {join.alias!r}"
            )
        index: Dict[Any, List[Row]] = {}
        for row in right_rows:
            index.setdefault(row[build_ref.column], []).append(row)
        joined: List[Env] = []
        for env in envs:
            key = self._lookup(env, probe_ref)
            matches = index.get(key, []) if key is not None else []
            if matches:
                for row in matches:
                    extended = dict(env)
                    extended[join.alias] = row
                    joined.append(extended)
            elif join.outer:
                extended = dict(env)
                extended[join.alias] = {
                    name: None for name in right_table.column_names
                }
                joined.append(extended)
        return joined

    def _projection(
        self, statement: Select, envs: List[Env]
    ) -> Tuple[List[str], Callable[[Env], Tuple]]:
        aliases = [statement.alias] + [j.alias for j in statement.joins]
        columns: List[str] = []
        refs: List[ColumnRef] = []
        for item in statement.items:
            if item.star:
                qualified = item.ref is not None
                targets = [item.ref.table] if qualified else aliases
                for alias in targets:
                    table = self._table_for_alias(statement, alias)
                    for name in table.column_names:
                        refs.append(ColumnRef(name, alias))
                        columns.append(
                            name if qualified or len(aliases) == 1
                            else f"{alias}.{name}"
                        )
            elif item.count:
                continue
            else:
                assert item.ref is not None
                refs.append(self._resolve_ref(statement, item.ref))
                columns.append(item.alias or item.ref.column)

        def extract(env: Env) -> Tuple:
            return tuple(self._lookup(env, ref) for ref in refs)

        return columns, extract

    def _resolve_ref(self, statement: Select, ref: ColumnRef) -> ColumnRef:
        """Resolve an unqualified column to its table alias eagerly so
        ambiguity is detected even on empty results."""
        if ref.table is not None:
            self._table_for_alias(statement, ref.table).column(ref.column)
            return ref
        aliases = [statement.alias] + [j.alias for j in statement.joins]
        owners = [
            alias
            for alias in aliases
            if self._table_for_alias(statement, alias).has_column(ref.column)
        ]
        if not owners:
            raise SchemaError(f"unknown column: {ref.column!r}")
        if len(owners) > 1:
            raise SchemaError(f"ambiguous column: {ref.column!r}")
        return ColumnRef(ref.column, owners[0])

    def _table_for_alias(self, statement: Select, alias: str) -> Table:
        if alias == statement.alias:
            return self.table(statement.table)
        for join in statement.joins:
            if join.alias == alias:
                return self.table(join.table)
        raise SchemaError(f"unknown table alias: {alias!r}")

    def _lookup(self, env: Env, ref: ColumnRef) -> Any:
        if ref.table is not None:
            if ref.table not in env:
                raise SchemaError(f"unknown table alias: {ref.table!r}")
            row = env[ref.table]
            if ref.column not in row:
                raise SchemaError(
                    f"no column {ref.column!r} in {ref.table!r}"
                )
            return row[ref.column]
        hits = [row for row in env.values() if ref.column in row]
        if not hits:
            raise SchemaError(f"unknown column: {ref.column!r}")
        if len(hits) > 1:
            raise SchemaError(f"ambiguous column: {ref.column!r}")
        return hits[0][ref.column]

    # ------------------------------------------------------------------
    # Condition evaluation
    # ------------------------------------------------------------------
    def _env_predicate(self, condition) -> Callable[[Env], bool]:
        def evaluate(env: Env) -> bool:
            return self._eval_condition(condition, env)

        return evaluate

    def _row_predicate(
        self, condition, alias: str
    ) -> Callable[[Row], bool]:
        if condition is None:
            return lambda row: True

        def evaluate(row: Row) -> bool:
            return self._eval_condition(condition, {alias: row})

        return evaluate

    def _eval_condition(self, condition, env: Env) -> bool:
        if isinstance(condition, And):
            return all(
                self._eval_condition(op, env) for op in condition.operands
            )
        if isinstance(condition, Or):
            return any(
                self._eval_condition(op, env) for op in condition.operands
            )
        if isinstance(condition, Not):
            return not self._eval_condition(condition.operand, env)
        if isinstance(condition, Comparison):
            left = self._operand_value(condition.left, env)
            right = self._operand_value(condition.right, env)
            return _compare(condition.op, left, right)
        if isinstance(condition, InList):
            value = self._operand_value(condition.operand, env)
            found = any(value == choice.value for choice in condition.choices)
            return found != condition.negated
        if isinstance(condition, IsNull):
            value = self._lookup(env, condition.operand)
            return (value is None) != condition.negated
        raise SqlSyntaxError(f"unknown condition: {condition!r}")

    def _operand_value(self, operand, env: Env) -> Any:
        if isinstance(operand, ColumnRef):
            return self._lookup(env, operand)
        if isinstance(operand, Value):
            return operand.value
        raise SqlSyntaxError(f"unknown operand: {operand!r}")

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={sorted(self.tables)})"


class _Transaction:
    """Context manager implementing snapshot/rollback semantics."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._snapshots: Dict[str, dict] = {}
        self._tables_before: Optional[set] = None

    def __enter__(self) -> "_Transaction":
        self._tables_before = set(self.db.tables)
        self._snapshots = {
            name: table.snapshot()
            for name, table in self.db.tables.items()
        }
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            return False  # commit: keep everything
        # rollback: drop tables created inside the scope, restore others
        for name in list(self.db.tables):
            if name not in self._tables_before:
                del self.db.tables[name]
        for name, state in self._snapshots.items():
            if name in self.db.tables:
                self.db.tables[name].restore(state)
        return False  # re-raise


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "LIKE":
        if left is None or right is None:
            return False
        pattern = (
            re.escape(str(right)).replace("%", ".*").replace("_", ".")
        )
        # re.escape escapes % and _ as themselves (no backslash needed in
        # modern Python, but be defensive about both forms)
        pattern = pattern.replace(r"\%", ".*").replace(r"\_", ".")
        return re.fullmatch(pattern, str(left), re.IGNORECASE) is not None
    if left is None or right is None:
        # SQL three-valued logic collapsed to False for NULL comparisons
        return False
    try:
        if op == "=":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise SqlSyntaxError(f"unknown operator: {op}")


def _sort_key(value: Any) -> Tuple:
    # None sorts first, then by type bucket to avoid TypeError
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    return (2, str(value))
