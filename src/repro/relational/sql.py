"""SQL subset: tokenizer, AST and parser.

Covers the statements the Coppermine-style platform schema needs:

* ``CREATE TABLE`` with column constraints (PRIMARY KEY, AUTOINCREMENT,
  NOT NULL, UNIQUE, DEFAULT, REFERENCES),
* ``INSERT INTO ... VALUES`` (multi-row),
* ``SELECT`` with qualified columns, aliases, INNER/LEFT JOIN ... ON,
  WHERE (AND/OR/NOT, comparisons, LIKE, IN, IS [NOT] NULL), ORDER BY,
  LIMIT/OFFSET,
* ``UPDATE ... SET ... WHERE`` and ``DELETE FROM ... WHERE``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from .errors import SqlSyntaxError

_KEYWORDS = frozenset(
    {
        "CREATE", "TABLE", "INSERT", "INTO", "VALUES", "SELECT", "FROM",
        "WHERE", "AND", "OR", "NOT", "NULL", "IS", "IN", "LIKE", "JOIN",
        "INNER", "LEFT", "OUTER", "ON", "AS", "ORDER", "BY", "ASC", "DESC",
        "LIMIT", "OFFSET", "UPDATE", "SET", "DELETE", "PRIMARY", "KEY",
        "UNIQUE", "DEFAULT", "REFERENCES", "AUTOINCREMENT", "TRUE", "FALSE",
        "DISTINCT", "COUNT",
    }
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|--[^\n]*)
  | (?P<number>[+-]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|<>|!=|[=<>])
  | (?P<punct>[(),.;*])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class SqlToken:
    kind: str  # keyword | name | number | string | op | punct | eof
    text: str
    pos: int


def tokenize_sql(text: str) -> List[SqlToken]:
    tokens: List[SqlToken] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}"
            )
        kind = match.lastgroup or ""
        value = match.group()
        start = pos
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(SqlToken("keyword", value.upper(), start))
        else:
            tokens.append(SqlToken(kind, value, start))
    tokens.append(SqlToken("eof", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """Possibly-qualified column reference (``table.column`` or ``column``)."""

    column: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Value:
    """A literal constant."""

    value: Any


@dataclass(frozen=True)
class Comparison:
    op: str  # = != < > <= >= LIKE
    left: Union[ColumnRef, Value]
    right: Union[ColumnRef, Value]


@dataclass(frozen=True)
class InList:
    operand: Union[ColumnRef, Value]
    choices: Tuple[Value, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    operand: ColumnRef
    negated: bool = False


@dataclass(frozen=True)
class And:
    operands: Tuple[Any, ...]


@dataclass(frozen=True)
class Or:
    operands: Tuple[Any, ...]


@dataclass(frozen=True)
class Not:
    operand: Any


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    autoincrement: bool = False
    default: Any = None
    references: Optional[Tuple[str, str]] = None


@dataclass
class CreateTable:
    table: str
    columns: List[ColumnDef]


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Any]]


@dataclass(frozen=True)
class JoinClause:
    table: str
    alias: str
    left: ColumnRef
    right: ColumnRef
    outer: bool = False  # LEFT [OUTER] JOIN


@dataclass(frozen=True)
class SelectItem:
    """Projection item: ``expr [AS alias]`` or ``*`` / ``t.*``."""

    ref: Optional[ColumnRef]  # None for bare *
    alias: Optional[str] = None
    star: bool = False
    count: bool = False  # COUNT(*) / COUNT(col)


@dataclass
class Select:
    items: List[SelectItem]
    table: str
    alias: str
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Any] = None
    order_by: List[Tuple[ColumnRef, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False


@dataclass
class Update:
    table: str
    changes: List[Tuple[str, Any]]
    where: Optional[Any] = None


@dataclass
class Delete:
    table: str
    where: Optional[Any] = None


Statement = Union[CreateTable, Insert, Select, Update, Delete]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class SqlParser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize_sql(text)
        self.pos = 0

    def _peek(self, ahead: int = 0) -> SqlToken:
        idx = self.pos + ahead
        return self.tokens[idx if idx < len(self.tokens) else -1]

    def _next(self) -> SqlToken:
        token = self._peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def _accept_keyword(self, *names: str) -> Optional[SqlToken]:
        token = self._peek()
        if token.kind == "keyword" and token.text in names:
            self.pos += 1
            return token
        return None

    def _expect_keyword(self, *names: str) -> SqlToken:
        token = self._next()
        if token.kind != "keyword" or token.text not in names:
            raise SqlSyntaxError(
                f"expected {'/'.join(names)}, got {token.text!r} "
                f"at offset {token.pos}"
            )
        return token

    def _expect_punct(self, text: str) -> None:
        token = self._next()
        if token.kind not in ("punct", "op") or token.text != text:
            raise SqlSyntaxError(
                f"expected {text!r}, got {token.text!r} at offset {token.pos}"
            )

    def _accept_punct(self, text: str) -> bool:
        token = self._peek()
        if token.kind in ("punct", "op") and token.text == text:
            self.pos += 1
            return True
        return False

    def _expect_name(self) -> str:
        token = self._next()
        if token.kind != "name":
            raise SqlSyntaxError(
                f"expected identifier, got {token.text!r} "
                f"at offset {token.pos}"
            )
        return token.text

    # ------------------------------------------------------------------
    def parse(self) -> Statement:
        token = self._peek()
        if token.kind != "keyword":
            raise SqlSyntaxError(f"expected statement, got {token.text!r}")
        if token.text == "CREATE":
            statement = self._parse_create()
        elif token.text == "INSERT":
            statement = self._parse_insert()
        elif token.text == "SELECT":
            statement = self._parse_select()
        elif token.text == "UPDATE":
            statement = self._parse_update()
        elif token.text == "DELETE":
            statement = self._parse_delete()
        else:
            raise SqlSyntaxError(f"unsupported statement: {token.text}")
        self._accept_punct(";")
        tail = self._peek()
        if tail.kind != "eof":
            raise SqlSyntaxError(f"trailing input: {tail.text!r}")
        return statement

    def _parse_create(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        table = self._expect_name()
        self._expect_punct("(")
        columns: List[ColumnDef] = []
        while True:
            columns.append(self._parse_column_def())
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return CreateTable(table, columns)

    def _parse_column_def(self) -> ColumnDef:
        name = self._expect_name()
        type_token = self._next()
        if type_token.kind != "name":
            raise SqlSyntaxError(
                f"expected column type, got {type_token.text!r}"
            )
        type_name = type_token.text
        # consume optional (n) length spec
        if self._accept_punct("("):
            self._next()
            self._expect_punct(")")
        primary_key = not_null = unique = autoincrement = False
        default: Any = None
        references: Optional[Tuple[str, str]] = None
        while True:
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
            elif self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                not_null = True
            elif self._accept_keyword("UNIQUE"):
                unique = True
            elif self._accept_keyword("AUTOINCREMENT"):
                autoincrement = True
            elif self._accept_keyword("DEFAULT"):
                default = self._parse_literal()
            elif self._accept_keyword("REFERENCES"):
                ref_table = self._expect_name()
                self._expect_punct("(")
                ref_column = self._expect_name()
                self._expect_punct(")")
                references = (ref_table, ref_column)
            else:
                break
        return ColumnDef(
            name=name,
            type_name=type_name,
            primary_key=primary_key,
            not_null=not_null,
            unique=unique,
            autoincrement=autoincrement,
            default=default,
            references=references,
        )

    def _parse_literal(self) -> Any:
        token = self._next()
        if token.kind == "number":
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return float(text)
            return int(text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "keyword" and token.text == "NULL":
            return None
        if token.kind == "keyword" and token.text == "TRUE":
            return True
        if token.kind == "keyword" and token.text == "FALSE":
            return False
        raise SqlSyntaxError(f"expected literal, got {token.text!r}")

    def _parse_insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_name()
        columns: List[str] = []
        if self._accept_punct("("):
            while True:
                columns.append(self._expect_name())
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        self._expect_keyword("VALUES")
        rows: List[List[Any]] = []
        while True:
            self._expect_punct("(")
            row: List[Any] = []
            while True:
                row.append(self._parse_literal())
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        return Insert(table, columns, rows)

    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        items: List[SelectItem] = []
        while True:
            items.append(self._parse_select_item())
            if not self._accept_punct(","):
                break
        self._expect_keyword("FROM")
        table = self._expect_name()
        alias = table
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        elif self._peek().kind == "name":
            alias = self._expect_name()
        joins: List[JoinClause] = []
        while True:
            outer = False
            if self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
                outer = True
            elif self._accept_keyword("INNER"):
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                pass
            else:
                break
            join_table = self._expect_name()
            join_alias = join_table
            if self._accept_keyword("AS"):
                join_alias = self._expect_name()
            elif self._peek().kind == "name":
                join_alias = self._expect_name()
            self._expect_keyword("ON")
            left = self._parse_column_ref()
            self._expect_punct("=")
            right = self._parse_column_ref()
            joins.append(JoinClause(join_table, join_alias, left, right,
                                    outer))
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_condition()
        order_by: List[Tuple[ColumnRef, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                ref = self._parse_column_ref()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append((ref, descending))
                if not self._accept_punct(","):
                    break
        limit: Optional[int] = None
        offset = 0
        if self._accept_keyword("LIMIT"):
            limit = int(self._parse_literal())
        if self._accept_keyword("OFFSET"):
            offset = int(self._parse_literal())
        return Select(
            items=items,
            table=table,
            alias=alias,
            joins=joins,
            where=where,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        if self._accept_punct("*"):
            return SelectItem(ref=None, star=True)
        if self._accept_keyword("COUNT"):
            self._expect_punct("(")
            if self._accept_punct("*"):
                ref = None
            else:
                ref = self._parse_column_ref()
            self._expect_punct(")")
            alias = None
            if self._accept_keyword("AS"):
                alias = self._expect_name()
            return SelectItem(ref=ref, alias=alias, count=True)
        ref = self._parse_column_ref()
        if ref.table is not None and ref.column == "*":
            return SelectItem(ref=ref, star=True)
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_name()
        return SelectItem(ref=ref, alias=alias)

    def _parse_column_ref(self) -> ColumnRef:
        first = self._expect_name()
        if self._accept_punct("."):
            if self._accept_punct("*"):
                return ColumnRef("*", first)
            return ColumnRef(self._expect_name(), first)
        return ColumnRef(first)

    def _parse_update(self) -> Update:
        self._expect_keyword("UPDATE")
        table = self._expect_name()
        self._expect_keyword("SET")
        changes: List[Tuple[str, Any]] = []
        while True:
            name = self._expect_name()
            self._expect_punct("=")
            changes.append((name, self._parse_literal()))
            if not self._accept_punct(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_condition()
        return Update(table, changes, where)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_name()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._parse_condition()
        return Delete(table, where)

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _parse_condition(self) -> Any:
        return self._parse_or_condition()

    def _parse_or_condition(self) -> Any:
        operands = [self._parse_and_condition()]
        while self._accept_keyword("OR"):
            operands.append(self._parse_and_condition())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _parse_and_condition(self) -> Any:
        operands = [self._parse_not_condition()]
        while self._accept_keyword("AND"):
            operands.append(self._parse_not_condition())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _parse_not_condition(self) -> Any:
        if self._accept_keyword("NOT"):
            return Not(self._parse_not_condition())
        return self._parse_predicate()

    def _parse_predicate(self) -> Any:
        if self._accept_punct("("):
            condition = self._parse_condition()
            self._expect_punct(")")
            return condition
        left = self._parse_operand()
        token = self._peek()
        if token.kind == "op":
            self._next()
            op = "!=" if token.text == "<>" else token.text
            right = self._parse_operand()
            return Comparison(op, left, right)
        if token.kind == "keyword" and token.text == "LIKE":
            self._next()
            right = self._parse_operand()
            return Comparison("LIKE", left, right)
        if token.kind == "keyword" and token.text == "IS":
            self._next()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            if not isinstance(left, ColumnRef):
                raise SqlSyntaxError("IS NULL requires a column")
            return IsNull(left, negated)
        if token.kind == "keyword" and token.text in ("IN", "NOT"):
            negated = False
            if token.text == "NOT":
                self._next()
                self._expect_keyword("IN")
                negated = True
            else:
                self._next()
            self._expect_punct("(")
            choices: List[Value] = []
            while True:
                choices.append(Value(self._parse_literal()))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return InList(left, tuple(choices), negated)
        raise SqlSyntaxError(
            f"expected predicate operator, got {token.text!r}"
        )

    def _parse_operand(self) -> Union[ColumnRef, Value]:
        token = self._peek()
        if token.kind == "name":
            return self._parse_column_ref()
        return Value(self._parse_literal())


def parse_sql(text: str) -> Statement:
    """Parse a single SQL statement."""
    return SqlParser(text).parse()
