"""Mini relational engine — the Coppermine-style gallery substrate.

The paper's platform stores content, users and their relationships in a
MySQL database behind a Coppermine photo gallery; :mod:`repro.d2r` lifts
that schema to RDF. This package provides the relational layer: typed
tables with PK/unique/FK constraints and a SQL subset front end.
"""

from .database import Database, ResultSet
from .errors import (
    IntegrityError,
    RelationalError,
    SchemaError,
    SqlSyntaxError,
    TypeMismatchError,
)
from .sql import parse_sql
from .table import Column, ColumnType, Row, Table

__all__ = [
    "Column",
    "ColumnType",
    "Database",
    "IntegrityError",
    "RelationalError",
    "ResultSet",
    "Row",
    "SchemaError",
    "SqlSyntaxError",
    "Table",
    "TypeMismatchError",
    "parse_sql",
]
