"""Tables, columns and rows.

The storage model is deliberately simple — every table keeps its rows in
insertion order with a hash index on the primary key and on every UNIQUE
column. That is all the platform's Coppermine-style schema needs, and all
the D2R mapper relies on (primary keys provide resource URIs, §2.1 of the
paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .errors import IntegrityError, SchemaError, TypeMismatchError


class ColumnType(enum.Enum):
    """Supported column types (a pragmatic MySQL-era subset)."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"

    @classmethod
    def from_sql(cls, name: str) -> "ColumnType":
        normalized = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "TIMESTAMP": cls.TIMESTAMP,
            "DATETIME": cls.TIMESTAMP,
        }
        base = normalized.split("(", 1)[0].strip()
        if base not in aliases:
            raise SchemaError(f"unknown column type: {name!r}")
        return aliases[base]

    def coerce(self, value: Any) -> Any:
        """Validate/convert ``value`` for this type (None passes through)."""
        if value is None:
            return None
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, str) and value.lstrip("+-").isdigit():
                    return int(value)
                raise TypeMismatchError(f"not an integer: {value!r}")
            return value
        if self is ColumnType.REAL:
            if isinstance(value, bool):
                raise TypeMismatchError(f"not a real: {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            try:
                return float(value)
            except (TypeError, ValueError) as exc:
                raise TypeMismatchError(f"not a real: {value!r}") from exc
        if self is ColumnType.TEXT:
            if isinstance(value, str):
                return value
            raise TypeMismatchError(f"not text: {value!r}")
        if self is ColumnType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if value in (0, 1):
                return bool(value)
            raise TypeMismatchError(f"not a boolean: {value!r}")
        if self is ColumnType.TIMESTAMP:
            # stored as an integer epoch or an ISO string — both accepted
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return value
            raise TypeMismatchError(f"not a timestamp: {value!r}")
        raise TypeMismatchError(f"unhandled type {self}")  # pragma: no cover


@dataclass(frozen=True)
class Column:
    """A column definition."""

    name: str
    type: ColumnType
    primary_key: bool = False
    nullable: bool = True
    unique: bool = False
    autoincrement: bool = False
    default: Any = None
    references: Optional[Tuple[str, str]] = None  # (table, column)


#: A row is a plain dict column-name → value.
Row = Dict[str, Any]


class Table:
    """A table: schema + rows + PK/unique hash indexes."""

    def __init__(self, name: str, columns: Iterable[Column]) -> None:
        self.name = name
        self.columns: List[Column] = list(columns)
        if not self.columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {name!r}")
        pks = [c for c in self.columns if c.primary_key]
        if len(pks) > 1:
            raise SchemaError(f"table {name!r} has multiple primary keys")
        self.primary_key: Optional[Column] = pks[0] if pks else None
        self._by_name: Dict[str, Column] = {c.name: c for c in self.columns}
        self.rows: List[Row] = []
        self._pk_index: Dict[Any, Row] = {}
        self._unique_indexes: Dict[str, Dict[Any, Row]] = {
            c.name: {} for c in self.columns if c.unique and not c.primary_key
        }
        self._autoincrement_next = 1

    def column(self, name: str) -> Column:
        if name not in self._by_name:
            raise SchemaError(f"no column {name!r} in table {self.name!r}")
        return self._by_name[name]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, values: Row) -> Row:
        """Insert one row (a mapping of column → value). Returns the row
        actually stored, with defaults and autoincrement applied."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)} for {self.name!r}"
            )
        row: Row = {}
        for col in self.columns:
            if col.name in values:
                value = col.type.coerce(values[col.name])
            elif col.autoincrement:
                value = self._autoincrement_next
            elif col.default is not None:
                value = col.type.coerce(col.default)
            else:
                value = None
            if value is None and (not col.nullable or col.primary_key):
                raise IntegrityError(
                    f"{self.name}.{col.name} may not be NULL"
                )
            row[col.name] = value

        if self.primary_key is not None:
            pk_value = row[self.primary_key.name]
            if pk_value in self._pk_index:
                raise IntegrityError(
                    f"duplicate primary key {pk_value!r} in {self.name!r}"
                )
        for col_name, index in self._unique_indexes.items():
            value = row[col_name]
            if value is not None and value in index:
                raise IntegrityError(
                    f"duplicate value {value!r} for unique column "
                    f"{self.name}.{col_name}"
                )

        self.rows.append(row)
        if self.primary_key is not None:
            self._pk_index[row[self.primary_key.name]] = row
            if self.primary_key.autoincrement:
                pk_value = row[self.primary_key.name]
                if isinstance(pk_value, int):
                    self._autoincrement_next = max(
                        self._autoincrement_next, pk_value + 1
                    )
        for col_name, index in self._unique_indexes.items():
            if row[col_name] is not None:
                index[row[col_name]] = row
        for col in self.columns:
            if col.autoincrement and not col.primary_key:
                value = row[col.name]
                if isinstance(value, int):
                    self._autoincrement_next = max(
                        self._autoincrement_next, value + 1
                    )
        return dict(row)

    def delete_where(self, predicate) -> int:
        """Delete rows satisfying ``predicate(row)``; returns count."""
        keep: List[Row] = []
        removed = 0
        for row in self.rows:
            if predicate(row):
                removed += 1
                if self.primary_key is not None:
                    self._pk_index.pop(row[self.primary_key.name], None)
                for col_name, index in self._unique_indexes.items():
                    if row[col_name] is not None:
                        index.pop(row[col_name], None)
            else:
                keep.append(row)
        self.rows = keep
        return removed

    def update_where(self, predicate, changes: Row) -> int:
        """Update rows satisfying ``predicate``; returns count changed."""
        for name in changes:
            self.column(name)  # validates existence
        if self.primary_key is not None and self.primary_key.name in changes:
            raise IntegrityError("updating primary keys is not supported")
        count = 0
        for row in self.rows:
            if not predicate(row):
                continue
            for name, value in changes.items():
                col = self.column(name)
                coerced = col.type.coerce(value)
                if coerced is None and not col.nullable:
                    raise IntegrityError(
                        f"{self.name}.{name} may not be NULL"
                    )
                if name in self._unique_indexes:
                    index = self._unique_indexes[name]
                    existing = index.get(coerced)
                    if (
                        coerced is not None
                        and existing is not None
                        and existing is not row
                    ):
                        raise IntegrityError(
                            f"duplicate value {coerced!r} for unique "
                            f"column {self.name}.{name}"
                        )
                    if row[name] is not None:
                        index.pop(row[name], None)
                    if coerced is not None:
                        index[coerced] = row
                row[name] = coerced
            count += 1
        return count

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, pk_value: Any) -> Optional[Row]:
        """Primary-key lookup; returns a copy or None."""
        if self.primary_key is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        row = self._pk_index.get(pk_value)
        return dict(row) if row is not None else None

    def scan(self) -> Iterator[Row]:
        """Iterate copies of all rows in insertion order."""
        for row in self.rows:
            yield dict(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={self.column_names}, " \
               f"rows={len(self.rows)})"

    # ------------------------------------------------------------------
    # Snapshot support (used by Database.transaction)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """An opaque copy of the table's state."""
        return {
            "rows": [dict(row) for row in self.rows],
            "autoincrement": self._autoincrement_next,
        }

    def restore(self, state: dict) -> None:
        """Reset the table to a previously-taken snapshot."""
        self.rows = [dict(row) for row in state["rows"]]
        self._autoincrement_next = state["autoincrement"]
        self._pk_index.clear()
        for index in self._unique_indexes.values():
            index.clear()
        for row in self.rows:
            if self.primary_key is not None:
                self._pk_index[row[self.primary_key.name]] = row
            for name, index in self._unique_indexes.items():
                if row[name] is not None:
                    index[row[name]] = row
