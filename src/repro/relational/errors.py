"""Relational engine exceptions."""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all relational engine errors."""


class SchemaError(RelationalError):
    """Invalid schema definition or unknown table/column."""


class IntegrityError(RelationalError):
    """Constraint violation: PK/unique duplicates, NOT NULL, FK."""


class SqlSyntaxError(RelationalError):
    """Malformed SQL text."""


class TypeMismatchError(RelationalError):
    """A value does not fit its column's declared type."""
