"""Zemanta resolver — full-text content suggestion.

Zemanta suggested related links (mostly Wikipedia/DBpedia) for a whole
text. The simulation scans the title for DBpedia labels — including
labels of redirect pages, which is how "Coliseum" in a title surfaces
the Colosseum — and returns the *redirect-source* resource, leaving
redirect resolution and validation to the downstream filter (unlike the
DBpedia resolver, Zemanta is a third party that does not clean up for
us).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import RDFS
from ..rdf.terms import Literal, URIRef
from .base import Candidate, Resolver


class ZemantaResolver(Resolver):
    """Suggests DBpedia resources whose label occurs in the text."""

    name = "zemanta"

    def __init__(self, dbpedia: Graph, max_candidates: int = 8) -> None:
        self.graph = dbpedia
        self.max_candidates = max_candidates
        # label (lower, space-normalized) → resources carrying it
        self._by_label: Dict[str, List[Tuple[URIRef, str]]] = {}
        for s, _, o in dbpedia.triples((None, RDFS.label, None)):
            if not isinstance(o, Literal):
                continue
            key = " ".join(o.lexical.lower().split())
            bucket = self._by_label.setdefault(key, [])
            if (s, o.lexical) not in bucket:
                bucket.append((s, o.lexical))

    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        return self._lookup(word)

    def resolve_text(
        self, text: str, language: Optional[str] = None
    ) -> List[Candidate]:
        lowered = f" {' '.join(text.lower().split())} "
        candidates: List[Candidate] = []
        seen = set()
        for key, resources in self._by_label.items():
            if f" {key} " not in lowered:
                continue
            for resource, label in resources:
                if resource in seen:
                    continue
                seen.add(resource)
                candidates.append(
                    Candidate(
                        resource=resource,
                        label=label,
                        # longer label matches are stronger signals
                        score=round(
                            min(0.9, 0.5 + 0.1 * len(key.split())), 4
                        ),
                        resolver=self.name,
                        word=label,
                    )
                )
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]

    def _lookup(self, word: str) -> List[Candidate]:
        key = " ".join(word.lower().split())
        candidates = [
            Candidate(
                resource=resource,
                label=label,
                score=0.65,
                resolver=self.name,
                word=word,
            )
            for resource, label in self._by_label.get(key, [])
        ]
        candidates.sort(key=lambda c: str(c.resource))
        return candidates[: self.max_candidates]
