"""Sindice resolver — a cross-dataset semantic web index.

Sindice indexed the whole semantic web; its results "may refer to
various ontologies, e.g. Geonames or DBpedia or others" (§2.2.2) —
which is precisely why the paper attaches priorities to graphs rather
than resolvers. This simulation indexes every label-bearing resource in
all configured graphs and — faithfully to the raw index behaviour — does
*not* follow redirects or skip disambiguation pages. Those papers cuts
are the downstream filter's job.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..nlp.similarity import jaro_winkler_ci
from ..rdf.graph import Graph
from ..rdf.namespace import GN, RDFS
from ..rdf.terms import Literal
from ..sparql.fulltext import FullTextIndex
from .base import Candidate, Resolver

#: Label-ish predicates Sindice's keyword index covers.
_LABEL_PREDICATES = (RDFS.label, GN.name, GN.alternateName)


class SindiceResolver(Resolver):
    """Keyword index across several graphs at once."""

    name = "sindice"

    def __init__(
        self, graphs: Iterable[Graph], max_candidates: int = 10
    ) -> None:
        self.graphs = list(graphs)
        self.max_candidates = max_candidates
        self._index = FullTextIndex()
        self._labels = {}
        for graph in self.graphs:
            for predicate in _LABEL_PREDICATES:
                for s, _, o in graph.triples((None, predicate, None)):
                    if not isinstance(o, Literal):
                        continue
                    self._index.add(s, predicate, o.lexical)
                    self._labels.setdefault(s, []).append(o.lexical)

    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        candidates: List[Candidate] = []
        for subject in self._index.search(word):
            labels = self._labels.get(subject, [])
            if not labels:
                continue
            label = max(labels, key=lambda l: jaro_winkler_ci(word, l))
            similarity = jaro_winkler_ci(word, label)
            candidates.append(
                Candidate(
                    resource=subject,
                    label=label,
                    score=round(0.6 * similarity, 4),
                    resolver=self.name,
                    word=word,
                    language=language,
                )
            )
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]
