"""Geonames resolver — location lookups over the Geonames graph.

Returns city-level features matching a word against ``gn:name`` or any
``gn:alternateName`` (so "Torino" finds the feature whose canonical name
is "Turin"). Population is the popularity proxy, mirroring the real
Geonames search ranking.
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.graph import Graph
from ..rdf.namespace import GN
from ..rdf.terms import Literal
from .base import Candidate, Resolver


class GeonamesResolver(Resolver):
    """Resolves (multi)words against Geonames features."""

    name = "geonames"

    def __init__(self, geonames: Graph, max_candidates: int = 5) -> None:
        self.graph = geonames
        self.max_candidates = max_candidates
        self._max_population = 1
        for _, _, obj in geonames.triples((None, GN.population, None)):
            if isinstance(obj, Literal) and obj.is_numeric:
                self._max_population = max(
                    self._max_population, int(obj.value)
                )

    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        lowered = word.lower()
        candidates: List[Candidate] = []
        for feature in set(self.graph.subjects(GN.featureClass, GN.P)):
            names = [
                obj.lexical
                for _, _, obj in self.graph.triples((feature, GN.name, None))
                if isinstance(obj, Literal)
            ]
            names += [
                obj.lexical
                for _, _, obj in self.graph.triples(
                    (feature, GN.alternateName, None)
                )
                if isinstance(obj, Literal)
            ]
            matching = [n for n in names if n.lower() == lowered]
            if not matching:
                continue
            population = self.graph.value(feature, GN.population)
            popularity = 0.0
            if isinstance(population, Literal) and population.is_numeric:
                popularity = int(population.value) / self._max_population
            canonical = self.graph.value(feature, GN.name)
            label = (
                canonical.lexical
                if isinstance(canonical, Literal)
                else matching[0]
            )
            score = round(min(1.0, 0.85 + 0.15 * popularity), 4)
            candidates.append(
                Candidate(
                    resource=feature,
                    label=label,
                    score=score,
                    resolver=self.name,
                    word=word,
                    entity_type="place",
                    language=language,
                )
            )
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]
