"""DBpedia resolver — SPARQL-based lookup with redirects and scoring.

The paper replaced the DBpedia Lookup web service with direct SPARQL
"to benefit from the full-text support, as well as additional filters
e.g. based on language, entity type & native scoring. The query also
follows resource redirections to avoid returning disambiguation pages."
(§2.2.2). This resolver reproduces each of those behaviours over the
synthetic DBpedia graph:

* full-text label matching (``bif:contains`` semantics on labels),
* optional language and entity-type filters,
* redirect following,
* disambiguation pages skipped at the source (so the downstream filter's
  check is only needed for candidates from *other* resolvers),
* native scoring: exact-label match → 1.0, otherwise a blend of label
  similarity and a popularity proxy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..nlp.similarity import jaro_winkler_ci
from ..rdf.graph import Graph
from ..rdf.namespace import RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ..sparql.fulltext import FullTextIndex
from ..lod.dbpedia import follow_redirect, is_disambiguation_page
from .base import Candidate, Resolver


class DBpediaResolver(Resolver):
    """Resolves (multi)words against DBpedia labels."""

    name = "dbpedia"

    def __init__(self, dbpedia: Graph, max_candidates: int = 8) -> None:
        self.graph = dbpedia
        self.max_candidates = max_candidates
        self._index = FullTextIndex.from_graph(
            dbpedia, predicates=[RDFS.label]
        )
        # popularity proxy: number of triples mentioning the resource
        self._popularity: Dict[URIRef, int] = {}
        for s, _, o in dbpedia:
            self._popularity[s] = self._popularity.get(s, 0) + 1
            if isinstance(o, URIRef):
                self._popularity[o] = self._popularity.get(o, 0) + 1
        self._max_popularity = max(self._popularity.values(), default=1)

    def resolve_term(
        self,
        word: str,
        language: Optional[str] = None,
        entity_type: Optional[URIRef] = None,
    ) -> List[Candidate]:
        subjects = self._index.search(word)
        candidates: List[Candidate] = []
        seen: Set[URIRef] = set()
        for subject in subjects:
            resolved = follow_redirect(self.graph, subject)
            if resolved in seen:
                continue
            if is_disambiguation_page(self.graph, resolved):
                continue  # the paper: redirects avoid disambiguation pages
            if entity_type is not None and (
                resolved, RDF.type, entity_type
            ) not in self.graph:
                continue
            label = self._best_label(resolved, word, language)
            if label is None:
                continue
            seen.add(resolved)
            candidates.append(
                Candidate(
                    resource=resolved,
                    label=label[0],
                    score=self._score(resolved, word, label[0]),
                    resolver=self.name,
                    word=word,
                    language=label[1],
                )
            )
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]

    # ------------------------------------------------------------------
    def _best_label(
        self, resource: URIRef, word: str, language: Optional[str]
    ) -> Optional[Tuple[str, Optional[str]]]:
        """Pick the label to report: prefer the requested language, then
        the label most similar to the queried word."""
        labels: List[Tuple[str, Optional[str]]] = [
            (obj.lexical, obj.lang)
            for obj in self.graph.objects(resource, RDFS.label)
            if isinstance(obj, Literal)
        ]
        if not labels:
            return None
        if language is not None:
            in_language = [l for l in labels if l[1] == language.lower()]
            if in_language:
                labels = in_language
        return max(
            labels, key=lambda item: jaro_winkler_ci(word, item[0])
        )

    def _score(self, resource: URIRef, word: str, label: str) -> float:
        if word.lower() == label.lower():
            return 1.0  # "maximum DBpedia score" — the paper's escape hatch
        similarity = jaro_winkler_ci(word, label)
        popularity = (
            self._popularity.get(resource, 0) / self._max_popularity
        )
        return round(min(0.99, 0.8 * similarity + 0.19 * popularity), 4)
