"""Evri resolver — typed named-entity resolution with full-text support.

Graph-writes: fresh annotation graphs built per resolution

Evri was a commercial entity-resolution service returning typed entities
(person / place / organization / concept). The paper extended SMOB's
resolver framework to it and used it as one of the full-text resolvers
that "benefit from the original context (the whole title) to help
disambiguation."

The simulation maintains its own entity catalog (minted under the
``evrir:`` namespace, linked to DBpedia via ``owl:sameAs``) built from
the synthetic world: people, monuments and cities, each with an entity
type. Full-text resolution scans the title for catalog entity names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..nlp.similarity import jaro_winkler_ci
from ..rdf.graph import Graph
from ..rdf.namespace import DBPR, EVRI, EVRIR, OWL, RDF, RDFS
from ..rdf.terms import Literal, URIRef
from ..lod.world import CITIES, PEOPLE, POIS
from .base import Candidate, Resolver


@dataclass(frozen=True)
class _EvriEntity:
    key: str
    names: Tuple[str, ...]
    entity_type: str  # person | place | organization | concept
    dbpedia_key: Optional[str]


def _default_catalog() -> List[_EvriEntity]:
    entities: List[_EvriEntity] = []
    for person in PEOPLE:
        entities.append(
            _EvriEntity(
                key=person.key,
                names=tuple(person.labels.values()),
                entity_type="person",
                dbpedia_key=person.key,
            )
        )
    for city in CITIES:
        entities.append(
            _EvriEntity(
                key=city.key,
                names=tuple(city.labels.values()),
                entity_type="place",
                dbpedia_key=city.key,
            )
        )
    for poi in POIS:
        if not poi.in_dbpedia:
            continue
        entities.append(
            _EvriEntity(
                key=poi.key,
                names=tuple(poi.labels.values()),
                entity_type="place",
                dbpedia_key=poi.key,
            )
        )
    return entities


def build_evri_graph(
    catalog: Optional[List[_EvriEntity]] = None,
) -> Graph:
    """The Evri entity graph (evri-typed resources + sameAs links)."""
    g = Graph(URIRef("http://www.evri.com"))
    for entity in catalog if catalog is not None else _default_catalog():
        resource = EVRIR[entity.key]
        g.add((resource, RDF.type, EVRI[entity.entity_type.capitalize()]))
        for name in entity.names:
            g.add((resource, RDFS.label, Literal(name)))
        if entity.dbpedia_key is not None:
            g.add((resource, OWL.sameAs, DBPR[entity.dbpedia_key]))
    return g


class EvriResolver(Resolver):
    """Typed entity resolution with term and full-text modes."""

    name = "evri"

    def __init__(
        self,
        catalog: Optional[List[_EvriEntity]] = None,
        max_candidates: int = 5,
    ) -> None:
        self.catalog = catalog if catalog is not None else _default_catalog()
        self.max_candidates = max_candidates
        self._by_token: Dict[str, List[_EvriEntity]] = {}
        for entity in self.catalog:
            for name in entity.names:
                for token in name.lower().split():
                    self._by_token.setdefault(token, [])
                    if entity not in self._by_token[token]:
                        self._by_token[token].append(entity)

    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        tokens = word.lower().split()
        if not tokens:
            return []
        pool = self._by_token.get(tokens[0], [])
        candidates: List[Candidate] = []
        for entity in pool:
            label, similarity = self._best_name(entity, word)
            if similarity < 0.6:
                continue
            candidates.append(self._candidate(entity, label, word,
                                              similarity))
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]

    def resolve_text(
        self, text: str, language: Optional[str] = None
    ) -> List[Candidate]:
        """Scan the whole title for catalog entity names (the original
        context helps: multi-token names match even when NP extraction
        split them)."""
        lowered = f" {' '.join(text.lower().split())} "
        candidates: List[Candidate] = []
        seen = set()
        for entity in self.catalog:
            for name in entity.names:
                needle = f" {name.lower()} "
                if needle in lowered and entity.key not in seen:
                    seen.add(entity.key)
                    candidates.append(
                        self._candidate(entity, name, name, 1.0)
                    )
                    break
        candidates.sort(key=lambda c: (-c.score, str(c.resource)))
        return candidates[: self.max_candidates]

    # ------------------------------------------------------------------
    def _best_name(
        self, entity: _EvriEntity, word: str
    ) -> Tuple[str, float]:
        best = entity.names[0]
        best_similarity = self._name_similarity(word, best)
        for name in entity.names[1:]:
            similarity = self._name_similarity(word, name)
            if similarity > best_similarity:
                best, best_similarity = name, similarity
        return best, best_similarity

    @staticmethod
    def _name_similarity(word: str, name: str) -> float:
        """Whole-name similarity, with credit for matching one token of a
        multi-token entity name ("Gaudí" → "Antoni Gaudí")."""
        similarity = jaro_winkler_ci(word, name)
        if word.lower() in name.lower().split():
            similarity = max(similarity, 0.8)
        return similarity

    def _candidate(
        self, entity: _EvriEntity, label: str, word: str, similarity: float
    ) -> Candidate:
        return Candidate(
            resource=EVRIR[entity.key],
            label=label,
            score=round(0.7 * similarity, 4),
            resolver=self.name,
            word=word,
            entity_type=entity.entity_type,
        )
