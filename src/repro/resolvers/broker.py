"""The semantic brokering component (paper §2.2.2, Figure 1).

"The next step involves a semantic brokering component. This component
is assisted by a set of resolvers that perform full-text or term-based
analysis [...] aimed at providing candidate semantic concepts referring
to Linked Open Data."

The broker fans a word list out to the term resolvers and the whole
title to the full-text resolvers (Evri, Zemanta), then merges: per
resource, the highest-scoring candidate wins, and per-word candidate
lists stay separate because disambiguation happens per word downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..rdf.terms import URIRef
from .base import Candidate, Resolver


@dataclass
class BrokerResult:
    """The broker's output: candidates grouped by originating word, plus
    the full-text candidates keyed under the pseudo-word ``*text*``."""

    per_word: Dict[str, List[Candidate]] = field(default_factory=dict)
    full_text: List[Candidate] = field(default_factory=list)

    def all_candidates(self) -> List[Candidate]:
        merged: List[Candidate] = []
        for candidates in self.per_word.values():
            merged.extend(candidates)
        merged.extend(self.full_text)
        return merged

    def words(self) -> List[str]:
        return list(self.per_word)


class SemanticBroker:
    """Fans out to resolvers and merges their candidates."""

    def __init__(self, resolvers: Sequence[Resolver]) -> None:
        if not resolvers:
            raise ValueError("broker needs at least one resolver")
        self.resolvers = list(resolvers)

    def resolve(
        self,
        words: Iterable[str],
        text: Optional[str] = None,
        language: Optional[str] = None,
    ) -> BrokerResult:
        """Resolve each word individually plus the full text as context."""
        result = BrokerResult()
        for word in words:
            if word in result.per_word:
                continue
            merged = self._merge(
                candidate
                for resolver in self.resolvers
                for candidate in resolver.resolve_term(word, language)
            )
            result.per_word[word] = merged
        if text:
            result.full_text = self._merge(
                candidate
                for resolver in self.resolvers
                if resolver.supports_full_text
                for candidate in resolver.resolve_text(text, language)
            )
        return result

    @staticmethod
    def _merge(candidates: Iterable[Candidate]) -> List[Candidate]:
        """Deduplicate by resource, keeping the highest-scoring candidate
        (stable across runs: ties resolve by resolver then resource)."""
        best: Dict[URIRef, Candidate] = {}
        for candidate in candidates:
            current = best.get(candidate.resource)
            if current is None or (candidate.score, candidate.resolver) > (
                current.score, current.resolver
            ):
                best[candidate.resource] = candidate
        return sorted(
            best.values(), key=lambda c: (-c.score, str(c.resource))
        )
