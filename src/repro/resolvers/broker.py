"""The semantic brokering component (paper §2.2.2, Figure 1).

"The next step involves a semantic brokering component. This component
is assisted by a set of resolvers that perform full-text or term-based
analysis [...] aimed at providing candidate semantic concepts referring
to Linked Open Data."

The broker fans a word list out to the term resolvers and the whole
title to the full-text resolvers (Evri, Zemanta), then merges: per
resource, the highest-scoring candidate wins, and per-word candidate
lists stay separate because disambiguation happens per word downstream.

Resolvers are external services and fail; the broker isolates each
resolver call, so one resolver raising loses only *its* candidates —
the merge still happens over everything the healthy resolvers returned,
and the failure is recorded on the result (``BrokerResult.failures``,
``BrokerResult.degraded``) instead of aborting the annotation. Pair
with :mod:`repro.resolvers.resilience` for retry/breaker/cache
hardening of the individual calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..obs import get_registry, get_tracer
from ..rdf.terms import URIRef
from .base import Candidate, Resolver


@dataclass(frozen=True)
class ResolverFailure:
    """One isolated resolver failure during a broker pass."""

    resolver: str
    word: Optional[str]  # None for the full-text phase
    error: str


@dataclass
class BrokerResult:
    """The broker's output: candidates grouped by originating word, plus
    the full-text candidates keyed under the pseudo-word ``*text*``.

    ``failures`` lists every isolated resolver error; ``degraded`` is
    true when at least one resolver failed — the candidates are then a
    partial (but still well-merged) view.
    """

    per_word: Dict[str, List[Candidate]] = field(default_factory=dict)
    full_text: List[Candidate] = field(default_factory=list)
    failures: List[ResolverFailure] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.failures)

    def failed_resolvers(self) -> List[str]:
        """Names of resolvers that failed at least once, sorted."""
        return sorted({failure.resolver for failure in self.failures})

    def all_candidates(self) -> List[Candidate]:
        merged: List[Candidate] = []
        for candidates in self.per_word.values():
            merged.extend(candidates)
        merged.extend(self.full_text)
        return merged

    def words(self) -> List[str]:
        return list(self.per_word)


class SemanticBroker:
    """Fans out to resolvers and merges their candidates."""

    def __init__(self, resolvers: Sequence[Resolver]) -> None:
        if not resolvers:
            raise ValueError("broker needs at least one resolver")
        self.resolvers = list(resolvers)

    def resolve(
        self,
        words: Iterable[str],
        text: Optional[str] = None,
        language: Optional[str] = None,
    ) -> BrokerResult:
        """Resolve each word individually plus the full text as context.

        Every resolver call is isolated: a raising resolver contributes
        no candidates for that word but cannot abort the merge or drop
        what other resolvers already returned. Failures are recorded on
        the result.
        """
        tracer = get_tracer()
        result = BrokerResult()
        with tracer.span("broker.resolve") as span:
            for word in words:
                if word in result.per_word:
                    continue
                collected: List[Candidate] = []
                for resolver in self.resolvers:
                    try:
                        collected.extend(
                            resolver.resolve_term(word, language)
                        )
                    except Exception as exc:  # noqa: BLE001 - isolate
                        self._record_failure(
                            result, resolver.name, word, exc
                        )
                result.per_word[word] = self._merge(collected)
            if text:
                collected = []
                for resolver in self.resolvers:
                    if not resolver.supports_full_text:
                        continue
                    try:
                        collected.extend(
                            resolver.resolve_text(text, language)
                        )
                    except Exception as exc:  # noqa: BLE001 - isolate
                        self._record_failure(
                            result, resolver.name, None, exc
                        )
                result.full_text = self._merge(collected)
            span.set_attribute("words", len(result.per_word))
            span.set_attribute("failures", len(result.failures))
        return result

    @staticmethod
    def _record_failure(
        result: BrokerResult,
        resolver: str,
        word: Optional[str],
        exc: BaseException,
    ) -> None:
        result.failures.append(ResolverFailure(
            resolver=resolver,
            word=word,
            error=f"{type(exc).__name__}: {exc}",
        ))
        get_registry().counter(
            "repro_broker_failures_total",
            "Isolated resolver failures during broker passes.",
        ).labels(resolver=resolver).inc()

    def resolver_stats(self) -> Dict[str, object]:
        """Per-resolver resilience counters, for resolvers that expose
        them (:class:`~repro.resolvers.resilience.ResilientResolver`);
        plain resolvers are simply absent from the mapping."""
        stats: Dict[str, object] = {}
        for resolver in self.resolvers:
            collect = getattr(resolver, "stats", None)
            if callable(collect):
                stats[resolver.name] = collect()
        return stats

    @staticmethod
    def _merge(candidates: Iterable[Candidate]) -> List[Candidate]:
        """Deduplicate by resource, keeping the highest-scoring candidate
        (stable across runs: score ties resolve to the candidate with
        the smaller ``(resolver, resource)`` pair)."""
        best: Dict[URIRef, Candidate] = {}
        for candidate in candidates:
            current = best.get(candidate.resource)
            if current is None or (
                candidate.score > current.score
                or (
                    candidate.score == current.score
                    and (candidate.resolver, str(candidate.resource))
                    < (current.resolver, str(current.resource))
                )
            ):
                best[candidate.resource] = candidate
        return sorted(
            best.values(), key=lambda c: (-c.score, str(c.resource))
        )


#: The issue tracker and the paper's prose call this component the
#: "resolver broker"; both names resolve to the same class.
ResolverBroker = SemanticBroker
