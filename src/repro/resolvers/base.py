"""Resolver abstractions: candidates and the resolver interface.

A resolver takes a word (term-based analysis) or a whole title
(full-text analysis) and proposes candidate LOD resources with a
resolver-native score. Candidates remember which *graph* their resource
belongs to, because the paper's filtering assigns priorities "with
graphs and not with the resolvers" (§2.2.2) — a Sindice candidate may
point into Geonames or DBpedia or elsewhere.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..rdf.terms import URIRef

#: Graph families the filtering step distinguishes.
GRAPH_GEONAMES = "geonames"
GRAPH_DBPEDIA = "dbpedia"
GRAPH_EVRI = "evri"
GRAPH_OTHER = "other"


def classify_graph(resource: URIRef) -> str:
    """Classify a resource URI into its source graph family."""
    text = str(resource)
    if text.startswith("http://sws.geonames.org/") or text.startswith(
        "http://www.geonames.org/"
    ):
        return GRAPH_GEONAMES
    if text.startswith("http://dbpedia.org/"):
        return GRAPH_DBPEDIA
    if text.startswith("http://www.evri.com/") or text.startswith(
        "http://evri.com/"
    ):
        return GRAPH_EVRI
    return GRAPH_OTHER


@dataclass(frozen=True)
class Candidate:
    """One candidate LOD resource for a word or text fragment."""

    resource: URIRef
    label: str                  # the resource's display label
    score: float                # resolver-native score in [0, 1]
    resolver: str               # resolver name, e.g. "dbpedia"
    word: str                   # the surface form that triggered the match
    graph: str = field(default="")  # filled from classify_graph if empty
    entity_type: Optional[str] = None  # e.g. "place", "person"
    language: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score out of range: {self.score}")
        if not self.graph:
            object.__setattr__(self, "graph", classify_graph(self.resource))


class Resolver(abc.ABC):
    """Base class for candidate sources.

    Term-based resolvers implement :meth:`resolve_term`; resolvers that
    benefit from the whole title as context (Evri, Zemanta in the paper)
    additionally override :meth:`resolve_text`.
    """

    #: Name used in Candidate.resolver and broker diagnostics.
    name: str = "resolver"

    @abc.abstractmethod
    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        """Candidates for a single (multi)word."""

    def resolve_text(
        self, text: str, language: Optional[str] = None
    ) -> List[Candidate]:
        """Candidates extracted from full text. Default: none — only
        full-text resolvers participate in this phase."""
        return []

    @property
    def supports_full_text(self) -> bool:
        return type(self).resolve_text is not Resolver.resolve_text
