"""The semantic brokering component and its resolvers (paper §2.2.2)."""

from .base import (
    Candidate,
    GRAPH_DBPEDIA,
    GRAPH_EVRI,
    GRAPH_GEONAMES,
    GRAPH_OTHER,
    Resolver,
    classify_graph,
)
from .broker import (
    BrokerResult,
    ResolverBroker,
    ResolverFailure,
    SemanticBroker,
)
from .dbpedia import DBpediaResolver
from .evri import EvriResolver, build_evri_graph
from .geonames import GeonamesResolver
from .resilience import (
    CircuitBreaker,
    CircuitOpenError,
    FlakyResolver,
    ResilientResolver,
    ResolverStats,
    ResolverTimeoutError,
    RetryPolicy,
    TTLCache,
    wrap_resilient,
)
from .sindice import SindiceResolver
from .zemanta import ZemantaResolver


def default_resolvers(corpus=None):
    """The paper's resolver set over the (synthetic) LOD corpus:
    DBpedia + Sindice extended with Evri, plus Geonames and the Zemanta
    full-text suggester."""
    from ..lod import build_lod_corpus

    corpus = corpus or build_lod_corpus()
    return [
        DBpediaResolver(corpus.dbpedia),
        GeonamesResolver(corpus.geonames),
        SindiceResolver(
            [corpus.dbpedia, corpus.geonames, corpus.linkedgeodata]
        ),
        EvriResolver(),
        ZemantaResolver(corpus.dbpedia),
    ]


__all__ = [
    "BrokerResult",
    "Candidate",
    "CircuitBreaker",
    "CircuitOpenError",
    "DBpediaResolver",
    "EvriResolver",
    "FlakyResolver",
    "GRAPH_DBPEDIA",
    "GRAPH_EVRI",
    "GRAPH_GEONAMES",
    "GRAPH_OTHER",
    "GeonamesResolver",
    "ResilientResolver",
    "Resolver",
    "ResolverBroker",
    "ResolverFailure",
    "ResolverStats",
    "ResolverTimeoutError",
    "RetryPolicy",
    "SemanticBroker",
    "SindiceResolver",
    "TTLCache",
    "ZemantaResolver",
    "build_evri_graph",
    "classify_graph",
    "default_resolvers",
    "wrap_resilient",
]
