"""Resilience layer around resolvers (paper §2.2.2, hardened).

The paper's brokering component exists because external LOD resolvers
(DBpedia lookup, Geonames, Sindice, Zemanta, Evri) are slow and
unreliable. This module makes that explicit: :class:`ResilientResolver`
wraps any :class:`~repro.resolvers.base.Resolver` with

* a **per-call timeout** (the wrapped call runs on a helper thread and
  is abandoned when the deadline passes),
* **retry** with exponential backoff and *deterministic* jitter
  (:class:`RetryPolicy` — the jitter is a hash of the call key and the
  attempt number, so schedules are reproducible in tests and logs),
* a per-resolver **circuit breaker** (:class:`CircuitBreaker`,
  closed → open → half-open) that stops hammering a resolver that keeps
  failing,
* a bounded, thread-safe **LRU + TTL cache** (:class:`TTLCache`) keyed
  on ``(word, language)`` so repeated lookups — the common case in
  batch annotation, where titles share words — never leave the process,
* and per-resolver **counters** (:class:`ResolverStats`: calls,
  failures, retries, timeouts, breaker trips, cache hit rate, latency)
  that batch runs and the ``repro annotate-batch`` CLI surface.

:class:`FlakyResolver` is the matching fault-injection wrapper: seeded,
per-input-deterministic failures and simulated latency, used by the
fault-injection test-suite and the batch benchmark.

Everything here is thread-safe: one wrapped resolver instance is meant
to be shared by all of a :class:`~repro.core.batch.BatchAnnotator`'s
workers.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import get_registry, get_tracer
from .base import Candidate, Resolver

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "FlakyResolver",
    "ResilientResolver",
    "ResolverStats",
    "ResolverTimeoutError",
    "RetryPolicy",
    "TTLCache",
    "wrap_resilient",
]


def _hash_fraction(text: str) -> float:
    """Deterministic, well-mixed fraction in [0, 1) from ``text``.

    blake2b, not crc32: crc32 is GF(2)-linear, so nearby inputs (a
    seed bumped by one) produce correlated — often complementary —
    decision patterns instead of independent-looking ones.
    """
    digest = hashlib.blake2b(
        text.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


class ResolverTimeoutError(RuntimeError):
    """A resolver call exceeded its per-call deadline."""


class CircuitOpenError(RuntimeError):
    """The resolver's circuit breaker is open — call skipped."""


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``attempts`` is the *total* number of tries (1 = no retry). The
    delay before retry ``n`` (0-based) is::

        min(base_delay * multiplier**n, max_delay) * (1 + jitter * h)

    where ``h`` in [0, 1) is a hash of ``(key, n)`` — stable across
    runs, different across keys, so a thundering herd of identical
    words still spreads out without any global randomness.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(
            self.base_delay * self.multiplier ** attempt, self.max_delay
        )
        if self.jitter:
            raw *= 1.0 + self.jitter * _hash_fraction(
                f"{key}#{attempt}"
            )
        return raw

    def schedule(self, key: str = "") -> List[float]:
        """All backoff delays for ``key`` — ``attempts - 1`` entries."""
        return [self.delay(n, key) for n in range(self.attempts - 1)]


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Classic closed/open/half-open breaker, thread-safe.

    ``failure_threshold`` consecutive failures trip the breaker open;
    after ``reset_timeout`` seconds one probe call is let through
    (half-open). A successful probe closes the breaker, a failing one
    re-opens it for another full timeout.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.trips = 0

    @property
    def state(self) -> str:
        now = self._clock()  # injected callable: never under _lock
        with self._lock:
            return self._effective_state(now)

    def _effective_state(self, now: float) -> str:
        # Called with self._lock held; ``now`` is sampled by the caller
        # before acquiring it so the injected clock never runs inside
        # the critical section. The analyzer is intra-procedural and
        # cannot see the caller's lock, hence the CC001 pragmas.
        if (
            self._state == BREAKER_OPEN  # cc: allow=CC001
            and now - self._opened_at >= self.reset_timeout  # cc: allow=CC001
        ):
            return BREAKER_HALF_OPEN
        return self._state  # cc: allow=CC001

    def allow(self) -> bool:
        """May a call proceed right now?

        In the half-open state only one caller wins the probe slot;
        concurrent callers are rejected until the probe reports back.
        """
        now = self._clock()
        with self._lock:
            state = self._effective_state(now)
            if state == BREAKER_CLOSED:
                return True
            if state == BREAKER_HALF_OPEN and not self._probe_in_flight:
                # claim the single probe slot
                self._state = BREAKER_HALF_OPEN
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._consecutive_failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        now = self._clock()  # sampled before the lock (CC003)
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                # failed probe: straight back to open
                self._state = BREAKER_OPEN
                self._opened_at = now
                self._probe_in_flight = False
                self.trips += 1
                return
            self._consecutive_failures += 1
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = BREAKER_OPEN
                self._opened_at = now
                self.trips += 1


# ----------------------------------------------------------------------
# LRU + TTL cache
# ----------------------------------------------------------------------
class TTLCache:
    """Bounded LRU cache with per-entry TTL, thread-safe.

    ``get`` returns ``(hit, value)`` so a cached empty candidate list is
    distinguishable from a miss. Expired entries count as misses and are
    dropped on access; inserting into a full cache evicts the least
    recently used entry.
    """

    def __init__(
        self,
        max_size: int = 1024,
        ttl: Optional[float] = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None)")
        self.max_size = max_size
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Tuple[float, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Any) -> Tuple[bool, Any]:
        # the injected clock is caller-supplied code of unknown cost:
        # sample it before entering the critical section (CC003)
        now = self._clock() if self.ttl is not None else 0.0
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False, None
            stored_at, value = entry
            if self.ttl is not None and now - stored_at >= self.ttl:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            return True, value

    def put(self, key: Any, value: Any) -> None:
        now = self._clock()  # sampled before the lock (CC003)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (now, value)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
@dataclass
class ResolverStats:
    """Counters one :class:`ResilientResolver` accumulates."""

    name: str = ""
    calls: int = 0            # resolver invocations that ran (not cached)
    successes: int = 0
    failures: int = 0         # guarded calls that raised (exhausted
    #                           retries or rejected by an open breaker)
    retries: int = 0          # extra attempts after a failed one
    timeouts: int = 0
    rejected: int = 0         # calls skipped by an open breaker
    breaker_trips: int = 0
    breaker_state: str = BREAKER_CLOSED
    cache_hits: int = 0
    cache_misses: int = 0
    latency_total: float = 0.0  # seconds spent inside the resolver
    latency_max: float = 0.0
    last_error: Optional[str] = None

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def mean_latency_ms(self) -> float:
        return (
            self.latency_total / self.calls * 1000.0 if self.calls else 0.0
        )

    def delta(self, earlier: "ResolverStats") -> "ResolverStats":
        """Counters accumulated since the ``earlier`` snapshot."""
        return ResolverStats(
            name=self.name,
            calls=self.calls - earlier.calls,
            successes=self.successes - earlier.successes,
            failures=self.failures - earlier.failures,
            retries=self.retries - earlier.retries,
            timeouts=self.timeouts - earlier.timeouts,
            rejected=self.rejected - earlier.rejected,
            breaker_trips=self.breaker_trips - earlier.breaker_trips,
            breaker_state=self.breaker_state,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            latency_total=self.latency_total - earlier.latency_total,
            latency_max=self.latency_max,
            last_error=self.last_error,
        )


# ----------------------------------------------------------------------
# The resilient wrapper
# ----------------------------------------------------------------------
#: Registry counter families backing :class:`ResolverStats` fields.
#: Children carry ``{resolver, instance}`` labels; the ``instance``
#: label is unique per wrapper, so a fresh resolver reads zero even
#: though the registry is process-wide.
_RESOLVER_COUNTERS: Dict[str, Tuple[str, str]] = {
    "calls": (
        "repro_resolver_calls_total",
        "Resolver invocations that ran (not served from cache).",
    ),
    "successes": (
        "repro_resolver_successes_total",
        "Resolver invocations that returned.",
    ),
    "failures": (
        "repro_resolver_failures_total",
        "Guarded calls that raised after exhausting retries or were "
        "rejected by an open breaker.",
    ),
    "retries": (
        "repro_resolver_retries_total",
        "Extra attempts after a failed one.",
    ),
    "timeouts": (
        "repro_resolver_timeouts_total",
        "Resolver invocations that exceeded the per-call deadline.",
    ),
    "rejected": (
        "repro_resolver_rejected_total",
        "Calls skipped because the circuit breaker was open.",
    ),
}

_RESOLVER_LATENCY = (
    "repro_resolver_latency_seconds",
    "Wall time spent inside the wrapped resolver, per invocation.",
)

_BREAKER_STATE_CODES = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}

_INSTANCE_IDS = itertools.count(1)


class ResilientResolver(Resolver):
    """Hardens an inner resolver with timeout/retry/breaker/cache.

    The wrapper is a drop-in :class:`Resolver`: it keeps the inner
    resolver's ``name`` and full-text capability, so brokers and
    filters never know it is there. All state (cache, breaker,
    counters) is thread-safe and shared across workers using the same
    instance.

    ``clock`` and ``sleep`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        inner: Resolver,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        cache: Optional[TTLCache] = None,
        timeout: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.inner = inner
        self.name = inner.name
        self.retry = retry or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.cache = cache if cache is not None else TTLCache()
        self.timeout = timeout
        self._clock = clock
        self._sleep = sleep
        self._lock = threading.Lock()
        # counters live in the obs registry (see _RESOLVER_COUNTERS);
        # the unique instance label keeps this wrapper's view at zero
        # regardless of what earlier instances accumulated there.
        self._instance = str(next(_INSTANCE_IDS))
        self._last_error: Optional[str] = None
        # hot-path span constants: resolvers are called once per word
        # per resolver, so skip per-call f-strings and dict literals
        self._span_name = f"resolver.{self.name}"
        self._span_attrs = {"instance": self._instance}

    # -- Resolver interface --------------------------------------------
    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        return self._guarded(
            ("term", word, language),
            lambda: self.inner.resolve_term(word, language),
        )

    def resolve_text(
        self, text: str, language: Optional[str] = None
    ) -> List[Candidate]:
        return self._guarded(
            ("text", text, language),
            lambda: self.inner.resolve_text(text, language),
        )

    @property
    def supports_full_text(self) -> bool:
        return self.inner.supports_full_text

    # -- Metrics plumbing ----------------------------------------------
    def _labels(self) -> Dict[str, str]:
        return {"resolver": self.name, "instance": self._instance}

    def _counter(self, which: str):
        name, help = _RESOLVER_COUNTERS[which]
        return get_registry().counter(name, help).labels(
            **self._labels()
        )

    def _latency(self):
        name, help = _RESOLVER_LATENCY
        return get_registry().histogram(name, help).labels(
            **self._labels()
        )

    def _refresh_gauges(self) -> None:
        """Mirror breaker/cache state into registry gauges so the
        Prometheus exposition carries them (their source of truth stays
        on :class:`CircuitBreaker` / :class:`TTLCache`)."""
        registry = get_registry()
        labels = self._labels()
        registry.gauge(
            "repro_resolver_breaker_state",
            "Circuit breaker state (0=closed, 1=half-open, 2=open).",
        ).labels(**labels).set(
            _BREAKER_STATE_CODES.get(self.breaker.state, 2)
        )
        registry.gauge(
            "repro_resolver_breaker_trips",
            "Times the circuit breaker tripped open.",
        ).labels(**labels).set(self.breaker.trips)
        if self.cache is not None:
            registry.gauge(
                "repro_resolver_cache_hits",
                "Resolver cache hits.",
            ).labels(**labels).set(self.cache.hits)
            registry.gauge(
                "repro_resolver_cache_misses",
                "Resolver cache misses.",
            ).labels(**labels).set(self.cache.misses)

    # -- Machinery -----------------------------------------------------
    def stats(self) -> ResolverStats:
        """A consistent snapshot of the counters.

        Counter values are sourced from the obs registry (this wrapper
        is just a labelled view over them); breaker and cache state are
        read from their owning objects, exactly as before.
        """
        latency = self._latency()
        snapshot = ResolverStats(
            name=self.name,
            calls=int(self._counter("calls").value),
            successes=int(self._counter("successes").value),
            failures=int(self._counter("failures").value),
            retries=int(self._counter("retries").value),
            timeouts=int(self._counter("timeouts").value),
            rejected=int(self._counter("rejected").value),
            latency_total=latency.sum,
            latency_max=latency.max,
        )
        with self._lock:
            snapshot.last_error = self._last_error
        snapshot.breaker_state = self.breaker.state
        snapshot.breaker_trips = self.breaker.trips
        if self.cache is not None:
            snapshot.cache_hits = self.cache.hits
            snapshot.cache_misses = self.cache.misses
        self._refresh_gauges()
        return snapshot

    def _guarded(
        self, key: Tuple[Any, ...], call: Callable[[], List[Candidate]]
    ) -> List[Candidate]:
        if self.cache is not None:
            hit, value = self.cache.get(key)
            if hit:
                return list(value)

        with get_tracer().span(self._span_name, self._span_attrs):
            return self._guarded_uncached(key, call)

    def _guarded_uncached(
        self, key: Tuple[Any, ...], call: Callable[[], List[Candidate]]
    ) -> List[Candidate]:
        if not self.breaker.allow():
            self._counter("rejected").inc()
            self._counter("failures").inc()
            raise CircuitOpenError(
                f"{self.name}: circuit open, call rejected"
            )

        retry_key = f"{self.name}:{key!r}"
        error: Optional[BaseException] = None
        for attempt in range(self.retry.attempts):
            if attempt:
                self._counter("retries").inc()
                self._sleep(self.retry.delay(attempt - 1, retry_key))
                if not self.breaker.allow():
                    self._counter("rejected").inc()
                    self._counter("failures").inc()
                    raise CircuitOpenError(
                        f"{self.name}: circuit opened during retries"
                    )
            started = self._clock()
            try:
                value = self._timed_call(call)
            except Exception as exc:  # noqa: BLE001 - resolver fault
                error = exc
                self.breaker.record_failure()
                self._counter("calls").inc()
                if isinstance(exc, ResolverTimeoutError):
                    self._counter("timeouts").inc()
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self._latency().observe(
                    max(self._clock() - started, 0.0)
                )
                continue
            self.breaker.record_success()
            self._counter("calls").inc()
            self._counter("successes").inc()
            self._latency().observe(max(self._clock() - started, 0.0))
            if self.cache is not None:
                self.cache.put(key, list(value))
            return list(value)

        self._counter("failures").inc()
        assert error is not None
        raise error

    def _timed_call(
        self, call: Callable[[], List[Candidate]]
    ) -> List[Candidate]:
        if self.timeout is None:
            return call()
        outcome: Dict[str, Any] = {}

        def runner() -> None:
            try:
                outcome["value"] = call()
            except BaseException as exc:  # noqa: BLE001 - reraised below
                outcome["error"] = exc

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        thread.join(self.timeout)
        if thread.is_alive():
            # the helper thread is abandoned; it finishes (or hangs) on
            # its own, the caller moves on — standard soft timeout.
            raise ResolverTimeoutError(
                f"{self.name}: call exceeded {self.timeout:.3f}s"
            )
        if "error" in outcome:
            raise outcome["error"]
        return outcome["value"]


def wrap_resilient(
    resolvers,
    retry: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    failure_threshold: int = 5,
    reset_timeout: float = 30.0,
    cache_size: int = 4096,
    cache_ttl: Optional[float] = 300.0,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
) -> List[ResilientResolver]:
    """Wrap every resolver with its own breaker and cache.

    One cache and one breaker *per resolver* (a DBpedia outage must not
    open Geonames' breaker, and cache keys are per-resolver anyway);
    the instances themselves are shared by all batch workers.
    """
    return [
        ResilientResolver(
            resolver,
            retry=retry,
            breaker=CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                clock=clock,
            ),
            cache=TTLCache(
                max_size=cache_size, ttl=cache_ttl, clock=clock
            ),
            timeout=timeout,
            clock=clock,
            sleep=sleep,
        )
        for resolver in resolvers
    ]


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class FlakyResolver(Resolver):
    """Seeded fault-injection wrapper for tests and benchmarks.

    Failures are *per-input deterministic*: whether call number ``n``
    for a given input fails is a hash of ``(seed, input, n)``, so a
    parallel run injects exactly the same faults as a sequential one
    regardless of thread interleaving. ``failure_rate=1.0`` gives the
    always-failing resolver of the acceptance tests; ``fail_first=k``
    makes the first ``k`` calls per input fail and the rest succeed
    (the shape retry tests want). ``latency`` seconds are slept before
    every call — the benchmark's simulated network.
    """

    def __init__(
        self,
        inner: Resolver,
        failure_rate: float = 0.5,
        seed: int = 0,
        fail_first: Optional[int] = None,
        latency: float = 0.0,
        exception: Callable[[str], Exception] = RuntimeError,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.inner = inner
        self.name = inner.name
        self.failure_rate = failure_rate
        self.seed = seed
        self.fail_first = fail_first
        self.latency = latency
        self.exception = exception
        self._sleep = sleep
        self._lock = threading.Lock()
        self._attempts: Dict[Any, int] = {}
        self.calls = 0
        self.injected_failures = 0

    def resolve_term(
        self, word: str, language: Optional[str] = None
    ) -> List[Candidate]:
        self._maybe_fail(("term", word, language))
        return self.inner.resolve_term(word, language)

    def resolve_text(
        self, text: str, language: Optional[str] = None
    ) -> List[Candidate]:
        self._maybe_fail(("text", text, language))
        return self.inner.resolve_text(text, language)

    @property
    def supports_full_text(self) -> bool:
        return self.inner.supports_full_text

    def _maybe_fail(self, key: Any) -> None:
        if self.latency:
            self._sleep(self.latency)
        with self._lock:
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            self.calls += 1
        if self.fail_first is not None:
            fail = attempt < self.fail_first
        else:
            fail = _hash_fraction(
                f"{self.seed}:{key!r}:{attempt}"
            ) < self.failure_rate
        if fail:
            with self._lock:
                self.injected_failures += 1
            raise self.exception(
                f"{self.name}: injected fault (attempt {attempt})"
            )
