"""User-assisted disambiguation (paper §2.2.2 / conclusion).

"Whilst the disambiguation task is humanly solved in the case of
semantic search and browsing of content where a dynamic user interface
is proposed to the user for selection, our goal is to automatically
select and discriminate the most appropriate candidate resource." and
"user evaluations are planned to evaluate and improve our disambiguation
algorithms."

This module is that loop: when the automatic filter ends AMBIGUOUS, the
UI presents the survivors; the user's pick is recorded, and recorded
picks act as a learned prior that resolves the same (word → resource)
ambiguity automatically next time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rdf.terms import URIRef
from ..resolvers.base import Candidate
from .filtering import FilterOutcome, Reason


@dataclass(frozen=True)
class Choice:
    """One recorded human pick."""

    word: str
    resource: URIRef


@dataclass
class DisambiguationPrompt:
    """What the dynamic UI shows for an ambiguous word."""

    word: str
    options: List[Candidate]

    def option_labels(self) -> List[str]:
        return [
            f"{c.label} ({c.graph})" for c in self.options
        ]


class UserAssistedDisambiguator:
    """Collects human picks and replays them as an automatic prior."""

    def __init__(self, min_confidence: int = 1) -> None:
        if min_confidence < 1:
            raise ValueError("min_confidence must be >= 1")
        #: word(lower) → Counter of picked resources
        self._history: Dict[str, Counter] = {}
        self.min_confidence = min_confidence
        self.choices: List[Choice] = []

    # ------------------------------------------------------------------
    def prompt_for(self, outcome: FilterOutcome
                   ) -> Optional[DisambiguationPrompt]:
        """The UI prompt for an AMBIGUOUS outcome (None otherwise)."""
        if outcome.reason is not Reason.AMBIGUOUS:
            return None
        return DisambiguationPrompt(outcome.word,
                                    list(outcome.survivors))

    def record_choice(self, word: str, resource: URIRef) -> None:
        """The user picked ``resource`` for ``word``."""
        counter = self._history.setdefault(word.lower(), Counter())
        counter[resource] += 1
        self.choices.append(Choice(word, resource))

    # ------------------------------------------------------------------
    def learned_resource(self, word: str) -> Optional[URIRef]:
        """The dominant past pick for ``word``, if confident enough.

        Confident = picked at least ``min_confidence`` times *and*
        strictly more often than any other resource.
        """
        counter = self._history.get(word.lower())
        if not counter:
            return None
        ranked = counter.most_common(2)
        best, best_count = ranked[0]
        if best_count < self.min_confidence:
            return None
        if len(ranked) > 1 and ranked[1][1] == best_count:
            return None  # tied: still ambiguous
        return best

    def resolve(self, outcome: FilterOutcome) -> FilterOutcome:
        """Upgrade an AMBIGUOUS outcome using the learned prior, when
        the learned resource is among the survivors."""
        if outcome.reason is not Reason.AMBIGUOUS:
            return outcome
        learned = self.learned_resource(outcome.word)
        if learned is None:
            return outcome
        for candidate in outcome.survivors:
            if candidate.resource == learned:
                return FilterOutcome(
                    word=outcome.word,
                    reason=Reason.ANNOTATED,
                    chosen=candidate,
                    survivors=outcome.survivors,
                    discarded=outcome.discarded,
                )
        return outcome

    # ------------------------------------------------------------------
    def accuracy_against(
        self, gold: Dict[str, URIRef]
    ) -> Tuple[int, int]:
        """(correct, total) of learned priors vs. a gold mapping — the
        'user evaluations' the paper plans."""
        correct = 0
        total = 0
        for word, expected in gold.items():
            learned = self.learned_resource(word)
            if learned is None:
                continue
            total += 1
            if learned == expected:
                correct += 1
        return correct, total
