"""The automatic semantic annotation pipeline — Figure 1 of the paper.

Stages, in order:

1. **Text processing** — identify the title language (Cavnar–Trenkle
   n-grams), run morphological analysis configured with that language,
   keep non-numeric NP lemmas with score ≥ 0.2, add term-frequency
   relevant words, merge with the user's plain tags into "a well-defined
   list of unique (multi)words".
2. **Semantic brokering** — fan the word list out to the term resolvers
   and the whole title to the full-text resolvers.
3. **Semantic filtering** — graph priority, validation, Jaro-Winkler
   cutoff, single-candidate rule (:mod:`repro.core.filtering`).
4. **Annotation** — one LOD resource per word that survived
   unambiguously.

Every stage's intermediate output is kept on the result object so the
examples and the FIG1 benchmark can display the pipeline exactly as the
paper's figure does.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..nlp.langdetect import LanguageDetector, default_detector
from ..nlp.morpho import MorphologicalAnalyzer
from ..nlp.termfreq import relevant_words
from ..obs import get_registry, get_tracer
from ..resolvers.base import Candidate
from ..resolvers.broker import BrokerResult, SemanticBroker
from .filtering import FilterOutcome, SemanticFilter

#: One histogram family shared by every annotator instance; the
#: ``stage`` label carries the Figure 1 stage name.
STAGE_HISTOGRAM = "repro_annotation_stage_seconds"
STAGE_HISTOGRAM_HELP = (
    "Latency of each Figure 1 annotation pipeline stage."
)


@contextmanager
def _stage(tracer, histogram, stage: str):
    """Bracket one pipeline stage: span + stage-latency observation."""
    begin = time.perf_counter()
    with tracer.span(f"annotate.{stage}"):
        yield
    histogram.labels(stage=stage).observe(time.perf_counter() - begin)


@dataclass(frozen=True)
class Annotation:
    """A produced annotation: the word and its unique LOD resource."""

    word: str
    resource: object  # URIRef
    label: str
    graph: str
    score: float


@dataclass
class AnnotationResult:
    """Everything the pipeline computed for one (title, tags) input."""

    title: str
    plain_tags: List[str]
    language: str
    np_lemmas: List[str] = field(default_factory=list)
    frequency_words: List[str] = field(default_factory=list)
    words: List[str] = field(default_factory=list)
    broker_result: Optional[BrokerResult] = None
    outcomes: Dict[str, FilterOutcome] = field(default_factory=dict)
    annotations: List[Annotation] = field(default_factory=list)

    @property
    def annotated_words(self) -> List[str]:
        return [a.word for a in self.annotations]

    def outcome_for(self, word: str) -> Optional[FilterOutcome]:
        return self.outcomes.get(word)


class SemanticAnnotator:
    """The paper's annotation pipeline, fully configurable.

    ``np_min_score`` is the 0.2 NP-score threshold, ``term_freq_top_k``
    the number of extra frequency-based words (0 disables the fallback),
    ``use_full_text`` toggles the Evri/Zemanta whole-title pass.
    """

    def __init__(
        self,
        broker: SemanticBroker,
        semantic_filter: SemanticFilter,
        detector: Optional[LanguageDetector] = None,
        np_min_score: float = 0.2,
        term_freq_top_k: int = 2,
        use_full_text: bool = True,
        prune_abstract_nouns: bool = False,
    ) -> None:
        self.broker = broker
        self.filter = semantic_filter
        self.detector = detector or default_detector()
        self.np_min_score = np_min_score
        self.term_freq_top_k = term_freq_top_k
        self.use_full_text = use_full_text
        # the paper's §2.2.2 future work: restrict the tf fallback to
        # concrete concepts via WordNet-style senses
        self.prune_abstract_nouns = prune_abstract_nouns
        self._analyzers: Dict[str, MorphologicalAnalyzer] = {}
        # annotate() is called concurrently by BatchAnnotator workers;
        # the per-language analyzer cache is the only state it shares.
        self._analyzers_lock = threading.Lock()

    def _analyzer(self, language: str) -> MorphologicalAnalyzer:
        with self._analyzers_lock:
            if language not in self._analyzers:
                self._analyzers[language] = MorphologicalAnalyzer(
                    language
                )
            return self._analyzers[language]

    # ------------------------------------------------------------------
    def annotate(
        self,
        title: str,
        tags: Sequence[str] = (),
        language: Optional[str] = None,
    ) -> AnnotationResult:
        """Run the full pipeline for a content's title and plain tags."""
        tracer = get_tracer()
        histogram = get_registry().histogram(
            STAGE_HISTOGRAM, STAGE_HISTOGRAM_HELP
        )
        with tracer.span("annotate") as pipeline_span:
            pipeline_span.set_attribute("title", title)

            with _stage(tracer, histogram, "langdetect"):
                detected = language or self.detector.detect(title)
            result = AnnotationResult(
                title=title, plain_tags=list(tags), language=detected
            )

            # --- stage 1: text processing -----------------------------
            with _stage(tracer, histogram, "morpho"):
                analyzer = self._analyzer(detected)
                np_tokens = analyzer.proper_nouns(
                    title, self.np_min_score
                )
            result.np_lemmas = [t.lemma for t in np_tokens]
            covered = {lemma.lower() for lemma in result.np_lemmas}
            for lemma in result.np_lemmas:
                covered.update(
                    part.lower() for part in lemma.split()
                )
            if self.term_freq_top_k > 0:
                with _stage(tracer, histogram, "termfreq"):
                    result.frequency_words = relevant_words(
                        title,
                        detected,
                        top_k=self.term_freq_top_k,
                        exclude=covered,
                    )
                    if self.prune_abstract_nouns:
                        from ..nlp.senses import prune_abstract

                        result.frequency_words = prune_abstract(
                            result.frequency_words, detected
                        )

            words: List[str] = []
            seen = set()
            for word in (
                result.np_lemmas + list(tags) + result.frequency_words
            ):
                word = word.strip()
                if word and word.lower() not in seen:
                    seen.add(word.lower())
                    words.append(word)
            result.words = words

            # --- stage 2: semantic brokering ---------------------------
            with _stage(tracer, histogram, "broker"):
                broker_result = self.broker.resolve(
                    words,
                    text=title if self.use_full_text else None,
                    language=detected,
                )
            result.broker_result = broker_result

            # full-text candidates corroborate existing words or add
            # new ones
            per_word: Dict[str, List[Candidate]] = {
                word: list(candidates)
                for word, candidates in broker_result.per_word.items()
            }
            for candidate in broker_result.full_text:
                target = self._matching_word(candidate, words)
                if target is None:
                    target = candidate.word
                    if target.lower() in {w.lower() for w in per_word}:
                        target = next(
                            w for w in per_word
                            if w.lower() == target.lower()
                        )
                    else:
                        per_word.setdefault(target, [])
                        result.words.append(target)
                bucket = per_word.setdefault(target, [])
                if all(
                    c.resource != candidate.resource for c in bucket
                ):
                    bucket.append(candidate)

            # --- stages 3+4: filtering and annotation ------------------
            with _stage(tracer, histogram, "filter"):
                for word, candidates in per_word.items():
                    outcome = self.filter.filter_word(word, candidates)
                    result.outcomes[word] = outcome
                    if (
                        outcome.annotated
                        and outcome.chosen is not None
                    ):
                        chosen = outcome.chosen
                        result.annotations.append(
                            Annotation(
                                word=word,
                                resource=chosen.resource,
                                label=chosen.label,
                                graph=chosen.graph,
                                score=chosen.score,
                            )
                        )
            pipeline_span.set_attribute("words", len(result.words))
            pipeline_span.set_attribute(
                "annotations", len(result.annotations)
            )
        return result

    @staticmethod
    def _matching_word(
        candidate: Candidate, words: Sequence[str]
    ) -> Optional[str]:
        surface = candidate.word.lower()
        for word in words:
            if word.lower() == surface:
                return word
        return None


def build_default_annotator(
    corpus=None,
    resilient: bool = False,
    resilience: Optional[dict] = None,
    **kwargs,
) -> SemanticAnnotator:
    """The annotator over the synthetic LOD corpus with the paper's
    resolver set and filter defaults.

    With ``resilient=True`` every resolver is wrapped in the
    retry/breaker/cache layer (:mod:`repro.resolvers.resilience`);
    ``resilience`` passes keyword arguments through to
    :func:`~repro.resolvers.resilience.wrap_resilient`.
    """
    from ..lod import build_lod_corpus
    from ..resolvers import default_resolvers

    corpus = corpus or build_lod_corpus()
    resolvers = default_resolvers(corpus)
    if resilient or resilience:
        from ..resolvers.resilience import wrap_resilient

        resolvers = wrap_resilient(resolvers, **(resilience or {}))
    broker = SemanticBroker(resolvers)
    semantic_filter = SemanticFilter(corpus)
    return SemanticAnnotator(broker, semantic_filter, **kwargs)
