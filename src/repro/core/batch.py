"""Batch annotation of legacy content (paper §6 / conclusion).

"There's a huge amount of content already present in our platform that
remains to be semantically annotated. Solving this issue requires to
create and introduce new automatic batch processing mechanisms."

:class:`BatchAnnotator` walks the platform's existing content in stable
pid order, annotates each item, writes the triples into a target graph,
and checkpoints progress so an interrupted run resumes where it left
off. Failures are isolated per item and reported, never fatal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..rdf.graph import Graph
from ..rdf.namespace import DCTERMS


@dataclass
class BatchStats:
    """Progress/outcome counters of a batch run."""

    processed: int = 0
    annotated: int = 0
    triples_added: int = 0
    failures: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)


@dataclass
class Checkpoint:
    """Resumable position: the last pid fully processed."""

    last_pid: int = 0
    stats: BatchStats = field(default_factory=BatchStats)


class BatchAnnotator:
    """Annotates a platform's back catalog in resumable batches."""

    def __init__(
        self,
        platform,
        target: Optional[Graph] = None,
        batch_size: int = 100,
        on_progress: Optional[Callable[[Checkpoint], None]] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.platform = platform
        self.target = target if target is not None else Graph()
        self.batch_size = batch_size
        self.on_progress = on_progress
        self.checkpoint = Checkpoint()

    # ------------------------------------------------------------------
    def pending_pids(self) -> List[int]:
        """Pids newer than the checkpoint, in processing order."""
        return [
            item.pid
            for item in self.platform.contents()
            if item.pid > self.checkpoint.last_pid
        ]

    def run(self, max_items: Optional[int] = None) -> BatchStats:
        """Process up to ``max_items`` pending contents (all by default).

        Progress callbacks fire after every completed batch; the
        checkpoint advances per item so a crash loses at most the item
        in flight.
        """
        pending = self.pending_pids()
        if max_items is not None:
            pending = pending[:max_items]
        stats = self.checkpoint.stats
        in_batch = 0
        for pid in pending:
            item = self.platform.content(pid)
            try:
                result = self.platform.annotator.annotate(
                    item.title, item.plain_tags
                )
                added = 0
                for annotation in result.annotations:
                    before = len(self.target)
                    self.target.add(
                        (item.resource, DCTERMS.subject,
                         annotation.resource)
                    )
                    added += len(self.target) - before
                stats.processed += 1
                if result.annotations:
                    stats.annotated += 1
                stats.triples_added += added
            except Exception as exc:  # noqa: BLE001 - isolate per item
                stats.processed += 1
                stats.failures.append((pid, f"{type(exc).__name__}: {exc}"))
            self.checkpoint.last_pid = pid
            in_batch += 1
            if in_batch >= self.batch_size:
                in_batch = 0
                if self.on_progress is not None:
                    self.on_progress(self.checkpoint)
        if in_batch and self.on_progress is not None:
            self.on_progress(self.checkpoint)
        return stats

    @property
    def done(self) -> bool:
        return not self.pending_pids()
