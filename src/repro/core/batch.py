"""Batch annotation of legacy content (paper §6 / conclusion).

Graph-writes: the caller-supplied target graph, from the single-threaded
drain loop only

"There's a huge amount of content already present in our platform that
remains to be semantically annotated. Solving this issue requires to
create and introduce new automatic batch processing mechanisms."

:class:`BatchAnnotator` walks the platform's existing content in stable
pid order, annotates each item, writes the triples into a target graph,
and checkpoints progress so an interrupted run resumes where it left
off. Failures are isolated per item and reported, never fatal.

With ``workers > 1`` annotation fans out over a
``ThreadPoolExecutor`` — the resolver stage is dominated by (simulated)
network latency, so threads overlap it. Results are *recorded* in pid
order behind a contiguous watermark regardless of completion order:
``checkpoint.last_pid`` only advances to pid *p* once every pending pid
≤ *p* has finished, so a crash mid-run never skips an unprocessed item
on resume (an item completed ahead of the watermark may be re-annotated
— at-least-once semantics, and annotation is idempotent on the target
graph). Stats, triples and progress callbacks are therefore identical
between sequential and parallel runs.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import get_registry, get_tracer
from ..rdf.graph import Graph
from ..rdf.namespace import DCTERMS


@dataclass
class BatchStats:
    """Progress/outcome counters of a batch run.

    Beyond the item counters, a run against resilient resolvers
    (:mod:`repro.resolvers.resilience`) also reports the health of the
    resolver fleet: ``degraded_items`` counts items annotated from
    partial candidates because at least one resolver failed,
    ``resolver_failures`` the individual isolated failures, and
    ``resolver_report`` maps resolver names to the
    :class:`~repro.resolvers.resilience.ResolverStats` accumulated
    *during this run* (cache hit rate, retries, breaker trips,
    latency).
    """

    processed: int = 0
    annotated: int = 0
    triples_added: int = 0
    failures: List[Tuple[int, str]] = field(default_factory=list)
    degraded_items: int = 0
    resolver_failures: int = 0
    resolver_report: Dict[str, object] = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.resolver_report.values())

    @property
    def cache_misses(self) -> int:
        return sum(
            s.cache_misses for s in self.resolver_report.values()
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def retries(self) -> int:
        return sum(s.retries for s in self.resolver_report.values())

    @property
    def breaker_trips(self) -> int:
        return sum(
            s.breaker_trips for s in self.resolver_report.values()
        )

    @property
    def timeouts(self) -> int:
        return sum(s.timeouts for s in self.resolver_report.values())

    def summary(self) -> Dict[str, int]:
        """The order-independent outcome of a run — what sequential and
        parallel executions of the same catalog must agree on."""
        return {
            "processed": self.processed,
            "annotated": self.annotated,
            "triples_added": self.triples_added,
            "failed": self.failed,
            "degraded_items": self.degraded_items,
            "resolver_failures": self.resolver_failures,
        }


@dataclass
class Checkpoint:
    """Resumable position: the last pid *contiguously* processed —
    every pending pid ≤ ``last_pid`` is done."""

    last_pid: int = 0
    stats: BatchStats = field(default_factory=BatchStats)


class BatchAnnotator:
    """Annotates a platform's back catalog in resumable batches.

    ``target`` may be a plain :class:`~repro.rdf.graph.Graph` or a
    buffered :class:`repro.store.StoreGraph`: any target exposing
    ``flush`` is flushed at every checkpoint boundary, so one batch of
    annotations becomes one generation-stamped store commit (one WAL
    record) and concurrent readers only ever observe whole batches.
    """

    def __init__(
        self,
        platform,
        target: Optional[Graph] = None,
        batch_size: int = 100,
        workers: int = 1,
        on_progress: Optional[Callable[[Checkpoint], None]] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.platform = platform
        self.target = target if target is not None else Graph()
        self.batch_size = batch_size
        self.workers = workers
        self.on_progress = on_progress
        self.checkpoint = Checkpoint()

    # ------------------------------------------------------------------
    def pending_pids(self) -> List[int]:
        """Pids newer than the checkpoint, in ascending pid order.

        Sorted here — not trusted from ``platform.contents()`` — because
        the watermark semantics of ``checkpoint.last_pid`` require the
        processing order to be ascending: with an unsorted platform a
        plain ``last_pid = pid`` assignment would mark still-unprocessed
        smaller pids as done and silently skip them on resume.
        """
        return sorted(
            item.pid
            for item in self.platform.contents()
            if item.pid > self.checkpoint.last_pid
        )

    def run(self, max_items: Optional[int] = None) -> BatchStats:
        """Process up to ``max_items`` pending contents (all by default).

        Progress callbacks fire after every completed batch; the
        checkpoint advances per contiguously-completed item, so a crash
        loses at most the items in flight (``workers`` of them).
        """
        pending = self.pending_pids()
        if max_items is not None:
            pending = pending[:max_items]
        stats = self.checkpoint.stats
        baseline = self._resolver_snapshot()
        tracer = get_tracer()
        with tracer.span("batch.run") as root:
            root.set_attribute("items", len(pending))
            root.set_attribute("workers", self.workers)
            if self.workers == 1:
                outcomes = (
                    (pid, self._annotate_item(pid, root))
                    for pid in pending
                )
                self._drain(pending, outcomes)
            else:
                self._run_parallel(pending, root)
        self._settle_store()
        self._update_resolver_report(stats, baseline)
        return stats

    def _settle_store(self) -> None:
        """Let a policy-triggered background checkpoint finish.

        A store-backed target whose :class:`~repro.store.engine.
        CheckpointPolicy` tripped during this run may still be writing
        its snapshot; waiting here means that when ``run`` returns, the
        WAL replay cost the policy bounds is actually bounded — a
        restart right after a completed batch replays only the tail."""
        store = getattr(self.target, "store", None)
        wait = getattr(store, "wait_for_checkpoints", None)
        if callable(wait):
            wait()

    @property
    def done(self) -> bool:
        return not self.pending_pids()

    # ------------------------------------------------------------------
    # Item processing (worker side: no shared mutable state)
    # ------------------------------------------------------------------
    def _annotate_item(self, pid: int, parent=None):
        """Annotate one content item.

        ``parent`` is the batch root span: workers run on pool threads
        whose thread-local span stack is empty, so the cross-thread
        parent is passed explicitly (sequential runs pass it too, for
        identical trace shapes).
        """
        counter = get_registry().counter(
            "repro_batch_items_total",
            "Content items processed by batch annotation runs.",
        )
        with get_tracer().span(
            "batch.item", {"pid": pid}, parent=parent
        ) as span:
            item = self.platform.content(pid)
            try:
                result = self.platform.annotator.annotate(
                    item.title, item.plain_tags
                )
            except Exception as exc:  # noqa: BLE001 - isolate per item
                span.set_status(
                    "error", f"{type(exc).__name__}: {exc}"
                )
                counter.labels(outcome="error").inc()
                return ("error", f"{type(exc).__name__}: {exc}", None)
            span.set_attribute(
                "annotations", len(result.annotations)
            )
            counter.labels(outcome="ok").inc()
            return ("ok", item.resource, result)

    # ------------------------------------------------------------------
    # Recording (single-threaded: graph writes and stats stay ordered)
    # ------------------------------------------------------------------
    def _drain(self, pending: List[int], outcomes) -> None:
        """Record ``(pid, outcome)`` pairs arriving in *any* order,
        advancing the contiguous watermark and firing batch callbacks
        exactly as a sequential in-order run would."""
        buffered: Dict[int, tuple] = {}
        watermark = 0  # index into pending of the next pid to record
        in_batch = 0
        for pid, outcome in outcomes:
            buffered[pid] = outcome
            while (
                watermark < len(pending)
                and pending[watermark] in buffered
            ):
                next_pid = pending[watermark]
                self._record(next_pid, buffered.pop(next_pid))
                self.checkpoint.last_pid = next_pid
                watermark += 1
                in_batch += 1
                if in_batch >= self.batch_size:
                    in_batch = 0
                    self._commit_watermark()
        if in_batch:
            self._commit_watermark()

    def _commit_watermark(self) -> None:
        """Checkpoint boundary: flush a buffered store-backed target
        (one annotation batch → one generation-stamped commit / WAL
        record) *before* the progress callback, so a checkpoint the
        callback persists never points past durable data. A failed
        flush keeps its ops buffered in the target and raises — the
        callback never sees a checkpoint whose batch did not commit."""
        flush = getattr(self.target, "flush", None)
        if callable(flush):
            flush()
        if self.on_progress is not None:
            self.on_progress(self.checkpoint)

    def _run_parallel(self, pending: List[int], parent=None) -> None:
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(self._annotate_item, pid, parent): pid
                for pid in pending
            }
            self._drain(
                pending,
                (
                    (futures[future], future.result())
                    for future in as_completed(futures)
                ),
            )

    def _record(self, pid: int, outcome: tuple) -> None:
        stats = self.checkpoint.stats
        kind, payload, result = outcome
        if kind == "error":
            stats.processed += 1
            stats.failures.append((pid, payload))
            return
        resource = payload
        added = 0
        for annotation in result.annotations:
            # insert() reports newness atomically — the previous
            # len()-before/len()-after straddle read store statistics
            # mid-write (the EF004 lint rule) and would miscount under
            # a concurrent writer
            if self.target.insert(
                (resource, DCTERMS.subject, annotation.resource)
            ):
                added += 1
        stats.processed += 1
        if result.annotations:
            stats.annotated += 1
        stats.triples_added += added
        broker_result = getattr(result, "broker_result", None)
        if broker_result is not None and broker_result.degraded:
            stats.degraded_items += 1
            stats.resolver_failures += len(broker_result.failures)

    # ------------------------------------------------------------------
    # Resolver health
    # ------------------------------------------------------------------
    def _resolver_snapshot(self) -> Dict[str, object]:
        broker = getattr(
            getattr(self.platform, "annotator", None), "broker", None
        )
        collect = getattr(broker, "resolver_stats", None)
        if callable(collect):
            return collect()
        return {}

    def _update_resolver_report(
        self, stats: BatchStats, baseline: Dict[str, object]
    ) -> None:
        """Store the per-resolver counters accumulated during this run
        (deltas against the pre-run snapshot — the resolvers are shared
        and keep counting across runs)."""
        current = self._resolver_snapshot()
        for name, snapshot in current.items():
            earlier = baseline.get(name)
            if earlier is None or not hasattr(snapshot, "delta"):
                stats.resolver_report[name] = snapshot
                continue
            fresh = snapshot.delta(earlier)
            previous = stats.resolver_report.get(name)
            if previous is not None and hasattr(previous, "delta"):
                # accumulate across resumed runs of this annotator
                for counter in (
                    "calls", "successes", "failures", "retries",
                    "timeouts", "rejected", "breaker_trips",
                    "cache_hits", "cache_misses", "latency_total",
                ):
                    setattr(fresh, counter,
                            getattr(previous, counter)
                            + getattr(fresh, counter))
                fresh.latency_max = max(
                    previous.latency_max, fresh.latency_max
                )
            stats.resolver_report[name] = fresh
