"""Location analysis (paper §2.2.1).

Whenever a content is received, its sender is identified and
contextualized. The provided output — location (GPS, civic address,
user-labeled place), nearby friends, and a guaranteed-valid Geonames
reference — is turned into RDF here. Nearby friends get *local*
descriptive resources (external Sindice-based linking exists but ships
disabled, as the paper turned it off over ambiguity/privacy concerns).

The module also implements the explicit POI association: the mobile app
sends ``poi:recs_id=N`` and this analyzer maps the referenced POI to a
DBpedia resource via SPARQL on its name, category and location —
excluding commercial categories (restaurants, hotels).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..context.gazetteer import Gazetteer
from ..context.models import Buddy, UserContext
from ..context.triple_tags import TripleTag
from ..lod.datasets import LodCorpus
from ..lod.world import PoiInfo
from ..rdf.graph import Triple
from ..rdf.namespace import DBPO, FOAF, OWL, RDF, TL_USER
from ..rdf.terms import Literal, URIRef
from ..resolvers.sindice import SindiceResolver
from ..sparql.evaluator import Evaluator

#: Category → DBpedia ontology class used in the POI SPARQL query.
_POI_CATEGORY_CLASSES = {
    "monument": DBPO.Monument,
    "museum": DBPO.Museum,
    "church": DBPO.Church,
    "park": DBPO.Park,
    "station": DBPO.Station,
    "stadium": DBPO.Stadium,
    "fountain": DBPO.Monument,
}

#: Commercial categories excluded from the DBpedia analysis (§2.2.1).
COMMERCIAL_CATEGORIES = frozenset({"restaurant", "hotel"})

#: The POI must lie within this distance of the DBpedia resource (km).
_POI_MATCH_RADIUS_KM = 0.5


@dataclass
class LocationAnalysis:
    """RDF-ready output of the location analysis for one content."""

    geonames_resource: Optional[URIRef] = None
    buddy_resources: List[URIRef] = field(default_factory=list)
    triples: List[Triple] = field(default_factory=list)
    poi_resource: Optional[URIRef] = None


class LocationAnalyzer:
    """Turns a :class:`UserContext` (and POI tags) into LOD links."""

    def __init__(
        self,
        corpus: LodCorpus,
        gazetteer: Optional[Gazetteer] = None,
        link_buddies_externally: bool = False,
    ) -> None:
        self.corpus = corpus
        self.gazetteer = gazetteer or Gazetteer()
        # The Sindice-based buddy linking the paper evaluated and then
        # turned off; kept implemented but default-disabled.
        self.link_buddies_externally = link_buddies_externally
        self._sindice = SindiceResolver(
            [corpus.dbpedia, corpus.geonames]
        )
        self._dbpedia_evaluator = Evaluator(corpus.dbpedia)

    # ------------------------------------------------------------------
    def analyze(
        self,
        context: UserContext,
        poi_tags: Tuple[TripleTag, ...] = (),
    ) -> LocationAnalysis:
        analysis = LocationAnalysis()
        if context.location is not None:
            analysis.geonames_resource = (
                context.location.geonames_resource
            )
        for buddy in context.buddies:
            resource, triples = self.buddy_resource(buddy)
            analysis.buddy_resources.append(resource)
            analysis.triples.extend(triples)
        for tag in poi_tags:
            if tag.namespace == "poi" and tag.predicate == "recs_id":
                resource = self.resolve_poi_tag(tag)
                if resource is not None:
                    analysis.poi_resource = resource
        return analysis

    # ------------------------------------------------------------------
    # Nearby friends
    # ------------------------------------------------------------------
    def buddy_resource(
        self, buddy: Buddy
    ) -> Tuple[URIRef, List[Triple]]:
        """A local descriptive RDF resource for a nearby friend."""
        resource = buddy.resource or TL_USER[buddy.username]
        triples: List[Triple] = [
            (resource, RDF.type, FOAF.Person),
            (resource, FOAF.nick, Literal(buddy.username)),
            (resource, FOAF.name, Literal(buddy.full_name)),
        ]
        for account in buddy.external_accounts:
            triples.append(
                (resource, FOAF.account, URIRef(account))
            )
        if self.link_buddies_externally:
            for candidate in self._sindice.resolve_term(buddy.full_name):
                triples.append(
                    (resource, OWL.sameAs, candidate.resource)
                )
        return resource, triples

    # ------------------------------------------------------------------
    # POI association
    # ------------------------------------------------------------------
    def resolve_poi_tag(self, tag: TripleTag) -> Optional[URIRef]:
        """``poi:recs_id=N`` → the matching DBpedia resource, or None."""
        try:
            recs_id = int(tag.value)
        except ValueError:
            return None
        poi = self.gazetteer.poi_by_recs_id(recs_id)
        if poi is None:
            return None
        return self.resolve_poi(poi)

    def resolve_poi(self, poi: PoiInfo) -> Optional[URIRef]:
        """Identify the DBpedia resource for a provider POI via SPARQL
        on name, category and location (§2.2.1)."""
        if poi.category in COMMERCIAL_CATEGORIES:
            return None  # commercial categories are excluded
        category_class = _POI_CATEGORY_CLASSES.get(poi.category)
        if category_class is None:
            return None
        label = poi.labels.get("en") or next(iter(poi.labels.values()))
        query = f"""
            SELECT DISTINCT ?poi WHERE {{
              ?poi rdfs:label ?label .
              ?poi a <{category_class}> .
              ?poi geo:geometry ?geo .
              FILTER(lcase(str(?label)) = "{label.lower()}") .
              FILTER(bif:st_intersects(?geo,
                     bif:st_point({poi.longitude}, {poi.latitude}),
                     {_POI_MATCH_RADIUS_KM})) .
            }}
        """
        result = self._dbpedia_evaluator.evaluate(query)
        if len(result) == 1:
            return result.first("poi")
        return None
