"""Semantic filtering and disambiguation (paper §2.2.2).

The stage after brokering, reproduced rule by rule:

1. **Graph priority** — "resources referring to Geonames graph have
   higher priority than the ones related to DBpedia, followed by Evri
   types of resources. At this time all candidate resources pointing to
   other graphs are discarded." Priorities attach to graphs, not
   resolvers, because e.g. Sindice returns candidates from several
   ontologies.
2. **Validation** — per ontology: the resource must have an actual
   binding in its graph (the paper's SPARQL ASK against the endpoint),
   and candidates carrying the ``disambiguates`` property are discarded
   (skipped for candidates from the DBpedia resolver, which already
   performs that check at the source).
3. **String similarity** — candidates with case-insensitive Jaro-Winkler
   similarity to the original word/lemma below 0.8 are discarded "unless
   their DBpedia score is maximum".
4. **Single-candidate rule** — automatic annotation happens only when,
   within the highest-priority graph that still has candidates, exactly
   one candidate remains — "to avoid ambiguity and limit errors".

Every rule is a constructor knob so the ablation benchmarks can switch
them individually.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..lod.datasets import LodCorpus
from ..lod.dbpedia import is_disambiguation_page
from ..nlp.similarity import jaro_winkler_ci
from ..obs import get_registry
from ..rdf.graph import Graph
from ..resolvers.base import (
    Candidate,
    GRAPH_DBPEDIA,
    GRAPH_EVRI,
    GRAPH_GEONAMES,
)
from ..resolvers.evri import build_evri_graph

#: The paper's priority order, highest first.
DEFAULT_PRIORITY: Tuple[str, ...] = (
    GRAPH_GEONAMES,
    GRAPH_DBPEDIA,
    GRAPH_EVRI,
)

#: The empirically-chosen similarity cutoff (paper §2.2.2).
DEFAULT_JW_THRESHOLD = 0.8


class Reason(enum.Enum):
    """Why a word did or did not get an automatic annotation."""

    ANNOTATED = "annotated"
    NO_CANDIDATES = "no-candidates"
    ALL_DISCARDED = "all-discarded"
    AMBIGUOUS = "ambiguous"


@dataclass
class FilterOutcome:
    """The filter's verdict for one word."""

    word: str
    reason: Reason
    chosen: Optional[Candidate] = None
    survivors: List[Candidate] = field(default_factory=list)
    discarded: List[Tuple[Candidate, str]] = field(default_factory=list)

    @property
    def annotated(self) -> bool:
        return self.reason is Reason.ANNOTATED


class SemanticFilter:
    """Configurable implementation of the four filtering rules."""

    def __init__(
        self,
        corpus: LodCorpus,
        priority: Sequence[str] = DEFAULT_PRIORITY,
        jw_threshold: float = DEFAULT_JW_THRESHOLD,
        validate: bool = True,
        use_priority: bool = True,
        jw_escape_on_max_dbpedia_score: bool = True,
        evri_graph: Optional[Graph] = None,
    ) -> None:
        self.corpus = corpus
        self.priority = tuple(priority)
        self.jw_threshold = jw_threshold
        self.validate = validate
        self.use_priority = use_priority
        self.jw_escape_on_max_dbpedia_score = jw_escape_on_max_dbpedia_score
        self._graphs: Dict[str, Graph] = {
            GRAPH_DBPEDIA: corpus.dbpedia,
            GRAPH_GEONAMES: corpus.geonames,
            GRAPH_EVRI: evri_graph
            if evri_graph is not None
            else build_evri_graph(),
        }

    # ------------------------------------------------------------------
    def filter_word(
        self, word: str, candidates: Sequence[Candidate]
    ) -> FilterOutcome:
        """Apply all rules to one word's candidate list."""
        outcome = self._apply_rules(word, candidates)
        get_registry().counter(
            "repro_filter_outcomes_total",
            "Filter verdicts by reason (Figure 1 stages 3-4).",
        ).labels(reason=outcome.reason.value).inc()
        return outcome

    def _apply_rules(
        self, word: str, candidates: Sequence[Candidate]
    ) -> FilterOutcome:
        if not candidates:
            return FilterOutcome(word, Reason.NO_CANDIDATES)

        survivors: List[Candidate] = []
        discarded: List[Tuple[Candidate, str]] = []
        seen_resources = set()

        for candidate in candidates:
            candidate = self._normalize(candidate)
            verdict = self._discard_reason(word, candidate)
            if verdict is not None:
                discarded.append((candidate, verdict))
            elif candidate.resource in seen_resources:
                discarded.append((candidate, "duplicate after redirect"))
            else:
                seen_resources.add(candidate.resource)
                survivors.append(candidate)

        if not survivors:
            return FilterOutcome(
                word, Reason.ALL_DISCARDED, discarded=discarded
            )

        if self.use_priority:
            top_graph = min(
                (c.graph for c in survivors),
                key=lambda g: self.priority.index(g),
            )
            top = [c for c in survivors if c.graph == top_graph]
        else:
            top = survivors

        if len(top) == 1:
            return FilterOutcome(
                word,
                Reason.ANNOTATED,
                chosen=top[0],
                survivors=survivors,
                discarded=discarded,
            )
        return FilterOutcome(
            word, Reason.AMBIGUOUS, survivors=survivors,
            discarded=discarded,
        )

    # ------------------------------------------------------------------
    def _normalize(self, candidate: Candidate) -> Candidate:
        """Resolve DBpedia redirects for candidates whose resolver did
        not already do so (part of the paper's validation: redirections
        are followed so redirect pages never compete with their
        targets)."""
        if not self.validate or candidate.graph != GRAPH_DBPEDIA:
            return candidate
        from ..lod.dbpedia import follow_redirect
        from dataclasses import replace

        target = follow_redirect(self.corpus.dbpedia, candidate.resource)
        if target == candidate.resource:
            return candidate
        return replace(candidate, resource=target)

    def _discard_reason(
        self, word: str, candidate: Candidate
    ) -> Optional[str]:
        """None if the candidate survives, else a human-readable reason."""
        if self.use_priority and candidate.graph not in self.priority:
            return f"graph {candidate.graph!r} not in priority list"

        if self.validate:
            graph = self._graphs.get(candidate.graph)
            if graph is not None and not graph.resource_exists(
                candidate.resource
            ):
                return "no binding in source graph"
            if (
                candidate.graph == GRAPH_DBPEDIA
                and candidate.resolver != "dbpedia"
                and is_disambiguation_page(
                    self.corpus.dbpedia, candidate.resource
                )
            ):
                return "disambiguation page"

        similarity = jaro_winkler_ci(word, candidate.label)
        if similarity < self.jw_threshold:
            is_max_dbpedia = (
                candidate.resolver == "dbpedia" and candidate.score >= 1.0
            )
            if not (self.jw_escape_on_max_dbpedia_score and is_max_dbpedia):
                return (
                    f"jaro-winkler {similarity:.2f} < "
                    f"{self.jw_threshold:.2f}"
                )
        return None
