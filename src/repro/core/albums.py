"""Semantic virtual albums (paper §2.3).

"Behind a virtual album stands a SPARQL query, which is able to retrieve
the searched content dynamically with very precise search criteria."

:class:`VirtualAlbum` wraps a SPARQL SELECT; the three builders below
generate exactly the paper's worked queries, parameterized on the
monument label, the radius, the friend-of user and the rating ordering:

* :func:`geo_album` — query 1: UGC near a monument,
* :func:`social_album` — query 2: + taken by friends of a user,
* :func:`rated_album` — query 3: + ordered by rating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..rdf.terms import Literal
from ..sparql.evaluator import Evaluator
from ..sparql.results import SelectResult

_PREFIXES = """\
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
"""


@dataclass
class VirtualAlbum:
    """A named dynamic collection backed by a SPARQL query."""

    name: str
    query: str

    def fetch(self, evaluator: Evaluator) -> SelectResult:
        result = evaluator.evaluate(self.query)
        if not isinstance(result, SelectResult):
            raise TypeError("virtual album queries must be SELECTs")
        return result

    def links(self, evaluator: Evaluator) -> List[str]:
        """The retrieved content links (the album's rendering input)."""
        return [
            str(row["link"].lexical if isinstance(row.get("link"), Literal)
                else row.get("link"))
            for row in self.fetch(evaluator)
            if row.get("link") is not None
        ]


def _label_term(monument_label: str, lang: Optional[str]) -> str:
    literal = Literal(monument_label, lang=lang)
    return literal.n3()


def geo_album(
    monument_label: str = "Mole Antonelliana",
    lang: Optional[str] = "it",
    radius_km: float = 0.3,
) -> VirtualAlbum:
    """Query 1: content taken near a monument."""
    query = f"""{_PREFIXES}
SELECT DISTINCT ?link WHERE {{
  ?monument rdfs:label {_label_term(monument_label, lang)} .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  FILTER(bif:st_intersects(?location, ?sourceGEO, {radius_km})) .
}}
"""
    return VirtualAlbum(
        name=f"near {monument_label}",
        query=query,
    )


def social_album(
    monument_label: str = "Mole Antonelliana",
    friend_of: str = "oscar",
    lang: Optional[str] = "it",
    radius_km: float = 0.3,
) -> VirtualAlbum:
    """Query 2: query 1 restricted to makers who know ``friend_of``."""
    query = f"""{_PREFIXES}
SELECT DISTINCT ?link WHERE {{
  ?monument rdfs:label {_label_term(monument_label, lang)} .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  ?resource foaf:maker ?user .
  ?target foaf:name {Literal(friend_of).n3()} .
  ?user foaf:knows ?target .
  FILTER( bif:st_intersects( ?location, ?sourceGEO, {radius_km} ) ) .
}}
"""
    return VirtualAlbum(
        name=f"near {monument_label} by friends of {friend_of}",
        query=query,
    )


def rated_album(
    monument_label: str = "Mole Antonelliana",
    friend_of: str = "oscar",
    lang: Optional[str] = "it",
    radius_km: float = 0.3,
) -> VirtualAlbum:
    """Query 3: query 2 ordered by ``rev:rating`` descending."""
    query = f"""{_PREFIXES}
SELECT DISTINCT ?link ?points WHERE {{
  ?monument rdfs:label {_label_term(monument_label, lang)} .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  ?resource foaf:maker ?user .
  ?target foaf:name {Literal(friend_of).n3()} .
  ?user foaf:knows ?target .
  ?resource rev:rating ?points .
  FILTER( bif:st_intersects( ?location, ?sourceGEO, {radius_km} ) ) .
}}
ORDER BY DESC(?points)
"""
    return VirtualAlbum(
        name=(
            f"highly-rated near {monument_label} "
            f"by friends of {friend_of}"
        ),
        query=query,
    )
