"""Fluent construction of semantic virtual albums.

§2.3: "A virtual album is a collection of multimedia objects retrieved
dynamically by applying several complex search conditions over our data
storage [...] SPARQL is used to express queries across several datasets
and its expressiveness helps creating 'complex' queries that are not
allowed by the traditional keyword search."

:class:`AlbumBuilder` is the programmatic face of that expressiveness:
criteria compose freely and compile to one SPARQL query.

Example::

    album = (AlbumBuilder("weekend in Turin")
             .near_label("Mole Antonelliana", lang="it", radius_km=0.5)
             .by_friend_of("oscar")
             .min_rating(3)
             .about_concept(DBPR.Mole_Antonelliana)
             .taken_between(t0, t1)
             .order_by_rating()
             .limit(20)
             .build())
"""

from __future__ import annotations

from typing import List, Optional

from ..rdf.terms import Literal, URIRef
from ..sparql.geo import Point
from .albums import VirtualAlbum

_PREFIXES = """\
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
PREFIX rev: <http://purl.org/stuff/rev#>
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX dcterms: <http://purl.org/dc/terms/>
"""


class AlbumBuilderError(ValueError):
    """Contradictory or incomplete album specification."""


class AlbumBuilder:
    """Composable criteria compiling to a virtual-album SPARQL query."""

    def __init__(self, name: str = "custom album") -> None:
        self.name = name
        self._patterns: List[str] = [
            "?resource a sioct:MicroblogPost .",
            "?resource comm:image-data ?link .",
        ]
        self._filters: List[str] = []
        self._order: Optional[str] = None
        self._limit: Optional[int] = None
        self._uses_geometry = False
        self._counter = 0

    def _fresh(self, stem: str) -> str:
        self._counter += 1
        return f"?{stem}{self._counter}"

    def _need_geometry(self) -> None:
        if not self._uses_geometry:
            self._patterns.append("?resource geo:geometry ?location .")
            self._uses_geometry = True

    # ------------------------------------------------------------------
    # Geo criteria
    # ------------------------------------------------------------------
    def near_label(
        self,
        label: str,
        lang: Optional[str] = "it",
        radius_km: float = 0.3,
    ) -> "AlbumBuilder":
        """Near a resource identified by its rdfs:label (the paper's
        monument anchor)."""
        self._need_geometry()
        anchor = self._fresh("anchor")
        anchor_geo = self._fresh("anchorGEO")
        literal = Literal(label, lang=lang)
        self._patterns.append(f"{anchor} rdfs:label {literal.n3()} .")
        self._patterns.append(f"{anchor} geo:geometry {anchor_geo} .")
        self._filters.append(
            f"FILTER(bif:st_intersects(?location, {anchor_geo}, "
            f"{radius_km}))"
        )
        return self

    def near_point(self, point: Point, radius_km: float) -> "AlbumBuilder":
        """Near explicit coordinates (the mobile client's position)."""
        self._need_geometry()
        self._filters.append(
            f"FILTER(bif:st_intersects(?location, "
            f'"{point.wkt()}", {radius_km}))'
        )
        return self

    # ------------------------------------------------------------------
    # Social criteria
    # ------------------------------------------------------------------
    def by_user(self, username: str) -> "AlbumBuilder":
        maker = self._fresh("maker")
        self._patterns.append(f"?resource foaf:maker {maker} .")
        self._patterns.append(
            f"{maker} foaf:name {Literal(username).n3()} ."
        )
        return self

    def by_friend_of(self, username: str) -> "AlbumBuilder":
        maker = self._fresh("maker")
        target = self._fresh("target")
        self._patterns.append(f"?resource foaf:maker {maker} .")
        self._patterns.append(
            f"{target} foaf:name {Literal(username).n3()} ."
        )
        self._patterns.append(f"{maker} foaf:knows {target} .")
        return self

    # ------------------------------------------------------------------
    # Rating / concept / time criteria
    # ------------------------------------------------------------------
    def min_rating(self, rating: float) -> "AlbumBuilder":
        self._ensure_rating_pattern()
        self._filters.append(f"FILTER(?points >= {rating})")
        return self

    def order_by_rating(self) -> "AlbumBuilder":
        self._ensure_rating_pattern()
        self._order = "ORDER BY DESC(?points)"
        return self

    def _ensure_rating_pattern(self) -> None:
        pattern = "?resource rev:rating ?points ."
        if pattern not in self._patterns:
            self._patterns.append(pattern)

    def about_concept(self, resource: URIRef) -> "AlbumBuilder":
        """Annotated (dcterms:subject) with a LOD concept."""
        self._patterns.append(
            f"?resource dcterms:subject <{resource}> ."
        )
        return self

    def taken_between(self, start: int, end: int) -> "AlbumBuilder":
        if end < start:
            raise AlbumBuilderError("time window is inverted")
        pattern = "?resource dcterms:created ?created ."
        if pattern not in self._patterns:
            self._patterns.append(pattern)
        self._filters.append(
            f"FILTER(?created >= {start} && ?created <= {end})"
        )
        return self

    def titled_like(self, words: str) -> "AlbumBuilder":
        """Full-text condition on the title (Virtuoso magic predicate)."""
        pattern = "?resource dc:title ?title ."
        if pattern not in self._patterns:
            self._patterns.append(pattern)
        self._patterns.append(
            f"?title bif:contains {Literal(words).n3()} ."
        )
        return self

    def limit(self, n: int) -> "AlbumBuilder":
        if n < 1:
            raise AlbumBuilderError("limit must be >= 1")
        self._limit = n
        return self

    # ------------------------------------------------------------------
    def sparql(self) -> str:
        body = "\n  ".join(self._patterns + self._filters)
        tail = ""
        if self._order:
            tail += f"\n{self._order}"
        if self._limit is not None:
            tail += f"\nLIMIT {self._limit}"
        projection = "?link ?points" if any(
            "?points" in p for p in self._patterns
        ) else "?link"
        return (
            f"{_PREFIXES}\nSELECT DISTINCT {projection} WHERE {{\n"
            f"  {body}\n}}{tail}\n"
        )

    def lint(self, linter=None) -> List[object]:
        """Diagnostics for the compiled query (no evaluation)."""
        from ..analysis import SparqlLinter

        if linter is None:
            linter = SparqlLinter.default()
        return linter.lint(self.sparql(), name=self.name)

    def build(self, strict: bool = False) -> VirtualAlbum:
        """Compile to a :class:`VirtualAlbum`.

        With ``strict=True`` the compiled query is linted first and
        :class:`AlbumBuilderError` is raised when error-severity
        diagnostics are found — a bad criterion fails at build time, not
        as an empty album at fetch time.
        """
        if strict:
            from ..analysis import Severity

            errors = [
                d for d in self.lint() if d.severity is Severity.ERROR
            ]
            if errors:
                rendered = "; ".join(d.render() for d in errors)
                raise AlbumBuilderError(
                    f"album {self.name!r} failed lint: {rendered}"
                )
        return VirtualAlbum(name=self.name, query=self.sparql())
