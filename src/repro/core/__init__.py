"""The paper's primary contribution: automatic semantic annotation,
location analysis, semantic virtual albums and the LOD mashup."""

from .batch import BatchAnnotator, BatchStats, Checkpoint
from .disambiguation import (
    Choice,
    DisambiguationPrompt,
    UserAssistedDisambiguator,
)
from .annotator import (
    Annotation,
    AnnotationResult,
    SemanticAnnotator,
    build_default_annotator,
)
from .album_builder import AlbumBuilder, AlbumBuilderError
from .albums import VirtualAlbum, geo_album, rated_album, social_album
from .filtering import (
    DEFAULT_JW_THRESHOLD,
    DEFAULT_PRIORITY,
    FilterOutcome,
    Reason,
    SemanticFilter,
)
from .location import (
    COMMERCIAL_CATEGORIES,
    LocationAnalysis,
    LocationAnalyzer,
)
from .mashup import (
    MashupSection,
    MashupView,
    mashup_query,
    run_mashup,
)

__all__ = [
    "AlbumBuilder",
    "AlbumBuilderError",
    "Annotation",
    "BatchAnnotator",
    "BatchStats",
    "Checkpoint",
    "Choice",
    "DisambiguationPrompt",
    "UserAssistedDisambiguator",
    "AnnotationResult",
    "COMMERCIAL_CATEGORIES",
    "DEFAULT_JW_THRESHOLD",
    "DEFAULT_PRIORITY",
    "FilterOutcome",
    "LocationAnalysis",
    "LocationAnalyzer",
    "MashupSection",
    "MashupView",
    "Reason",
    "SemanticAnnotator",
    "SemanticFilter",
    "VirtualAlbum",
    "build_default_annotator",
    "geo_album",
    "mashup_query",
    "rated_album",
    "run_mashup",
    "social_album",
]
