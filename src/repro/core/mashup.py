"""The "About" mashup (paper §4.1, Figure 4).

Starting from a picture and its location, a single 4-branch UNION query
collects, per branch with ``LIMIT 5``:

1. the description of the city the tourist is in (DBpedia abstract,
   joined to the LinkedGeoData city node by shared label, within 1 km);
2. nearby restaurants and their websites (LinkedGeoData, 0.3 km);
3. nearby tourist attractions (LinkedGeoData ``lgdo:Tourism``, 1 km);
4. other user-generated content taken at the same location (0.2 km).

The query text mirrors the paper's listing (with the PHP string
concatenation replaced by proper parameterization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..rdf.namespace import TL_PID
from ..rdf.terms import Literal, Term, URIRef
from ..sparql.evaluator import Evaluator
from ..sparql.results import SelectResult

_PREFIXES = """\
PREFIX dbpo: <http://dbpedia.org/ontology/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX lgdo: <http://linkedgeodata.org/ontology/>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX geo: <http://www.w3.org/2003/01/geo/wgs84_pos#>
"""


def mashup_query(
    pid: int,
    language: str = "it",
    city_radius_km: float = 1.0,
    restaurant_radius_km: float = 0.3,
    tourism_radius_km: float = 1.0,
    ugc_radius_km: float = 0.2,
    per_branch_limit: int = 5,
) -> str:
    """Build the paper's mashup query for picture ``pid``."""
    picture = f"<{TL_PID[str(pid)]}>"
    return f"""{_PREFIXES}
SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       {picture} geo:geometry ?locPID .
       ?city geo:geometry ?locCity .
       ?city a ?entType .
       ?city rdfs:label ?lbl .
       ?others rdfs:label ?lbl .
       ?others dbpo:abstract ?desc .
       ?others a dbpo:Place .
       FILTER (?entType in (lgdo:City)) .
       FILTER langMatches(lang(?desc), '{language}') .
       FILTER( bif:st_intersects( ?locPID, ?locCity,
               {city_radius_km} ) ) .
     }} LIMIT {per_branch_limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       {picture} geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       OPTIONAL {{
         ?others <http://linkedgeodata.org/property/website> ?desc }} .
       FILTER (?entType in (lgdo:Restaurant)) .
       FILTER( bif:st_intersects( ?locPID, ?location,
               {restaurant_radius_km} ) ) .
     }} LIMIT {per_branch_limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       {picture} geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       OPTIONAL {{
         ?others <http://linkedgeodata.org/property/website> ?desc }} .
       FILTER (?entType in (lgdo:Tourism)) .
       FILTER( bif:st_intersects( ?locPID, ?location,
               {tourism_radius_km} ) ) .
     }} LIMIT {per_branch_limit} }}
  UNION
  {{ SELECT DISTINCT ?lbl ?entType ?desc ?others WHERE {{
       {picture} geo:geometry ?locPID .
       ?others geo:geometry ?location .
       ?others a ?entType .
       ?others rdfs:label ?lbl .
       ?others comm:image-data ?desc .
       FILTER (?entType in (sioct:MicroblogPost)) .
       FILTER (?others != {picture}) .
       FILTER( bif:st_intersects( ?locPID, ?location,
               {ugc_radius_km} ) ) .
     }} LIMIT {per_branch_limit} }}
}}
"""


@dataclass
class MashupSection:
    """One logical section of the About screen."""

    kind: str  # city | restaurant | tourism | ugc
    label: str
    description: Optional[str]
    resource: URIRef


@dataclass
class MashupView:
    """The rendered About screen content."""

    sections: Dict[str, List[MashupSection]]

    def __getitem__(self, kind: str) -> List[MashupSection]:
        return self.sections.get(kind, [])

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.sections.values())


_KIND_BY_TYPE = {
    "http://linkedgeodata.org/ontology/City": "city",
    "http://linkedgeodata.org/ontology/Restaurant": "restaurant",
    "http://linkedgeodata.org/ontology/Tourism": "tourism",
    "http://rdfs.org/sioc/types#MicroblogPost": "ugc",
}


def run_mashup(
    evaluator: Evaluator, pid: int, language: str = "it", **kwargs
) -> MashupView:
    """Execute the mashup query and group rows into screen sections."""
    result = evaluator.evaluate(mashup_query(pid, language, **kwargs))
    assert isinstance(result, SelectResult)
    # group rows per (kind, resource); a resource may appear once per
    # label language, so pick the label in the requested language when
    # available (ties broken lexically for determinism)
    grouped: Dict[tuple, List[dict]] = {}
    for row in result:
        entity_type = row.get("entType")
        resource = row.get("others")
        label = row.get("lbl")
        if entity_type is None or resource is None or label is None:
            continue
        kind = _KIND_BY_TYPE.get(str(entity_type))
        if kind is None:
            continue
        grouped.setdefault((kind, resource), []).append(row)

    sections: Dict[str, List[MashupSection]] = {}
    for (kind, resource), rows in sorted(
        grouped.items(), key=lambda item: (item[0][0], str(item[0][1]))
    ):
        rows.sort(
            key=lambda row: (
                not (
                    isinstance(row["lbl"], Literal)
                    and row["lbl"].lang == language
                ),
                _lexical(row["lbl"]),
            )
        )
        chosen = rows[0]
        description = chosen.get("desc")
        sections.setdefault(kind, []).append(
            MashupSection(
                kind=kind,
                label=_lexical(chosen["lbl"]),
                description=(
                    _lexical(description) if description is not None
                    else None
                ),
                resource=resource,
            )
        )
    return MashupView(sections)


def _lexical(term: Term) -> str:
    return term.lexical if isinstance(term, Literal) else str(term)
