"""Runtime lock sanitizer tests: inversion detection, hold timing,
Condition compatibility, and metrics export."""

import threading
import time

import pytest

from repro.analysis.sanitizer import LockSanitizer
from repro.obs import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    """An isolated metrics registry for counter assertions."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def run_in_thread(fn):
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


class TestInstallation:
    def test_factories_patched_and_restored(self):
        original_lock = threading.Lock
        original_rlock = threading.RLock
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            assert threading.Lock is not original_lock
            assert threading.RLock is not original_rlock
            lock = threading.Lock()
            assert "test_sanitizer.py" in lock.name
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_disabled_sanitizer_is_a_noop(self):
        original = threading.Lock
        sanitizer = LockSanitizer(enabled=False)
        with sanitizer.installed():
            assert threading.Lock is original
        assert sanitizer.report().locks_created == 0

    def test_locks_made_before_install_are_untouched(self):
        plain = threading.Lock()
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            with plain:
                pass
        assert sanitizer.report().acquisitions == 0


class TestOrderTracking:
    def test_consistent_order_no_inversion(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            a = threading.Lock()
            b = threading.Lock()
            for _ in range(3):
                with a:
                    with b:
                        pass
        report = sanitizer.report()
        assert report.inversions == []
        assert report.acquisitions == 6
        assert len(report.edges) == 1

    def test_inversion_detected_across_threads(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            a = threading.Lock()
            b = threading.Lock()

            def forward():
                with a:
                    with b:
                        pass

            def backward():
                with b:
                    with a:
                        pass

            run_in_thread(forward)
            run_in_thread(backward)
        report = sanitizer.report()
        assert len(report.inversions) == 1
        inversion = report.inversions[0]
        assert inversion.first != inversion.second
        assert "inversion" in inversion.describe()
        counter = registry.get("repro_sanitizer_inversions_total")
        assert counter.value == 1

    def test_inversion_reported_once_per_pair(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            for _ in range(5):
                with b:
                    with a:
                        pass
        assert len(sanitizer.report().inversions) == 1

    def test_same_site_nesting_not_an_inversion(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            def make():
                return threading.Lock()  # one shared creation site

            first, second = make(), make()
            with first:
                with second:
                    pass
            with second:
                with first:
                    pass
        report = sanitizer.report()
        assert report.inversions == []
        assert report.same_site_nestings == 2

    def test_rlock_reentry_is_not_an_edge(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            lock = threading.RLock()
            with lock:
                with lock:
                    pass
        report = sanitizer.report()
        assert report.edges == set()
        assert report.inversions == []


class TestHoldTiming:
    def test_long_hold_recorded(self, registry):
        sanitizer = LockSanitizer(long_hold_threshold=0.02)
        with sanitizer.installed():
            lock = threading.Lock()
            with lock:
                time.sleep(0.04)
        report = sanitizer.report()
        assert len(report.long_holds) == 1
        hold = report.long_holds[0]
        assert hold.seconds >= 0.02
        assert "held for" in hold.describe()
        counter = registry.get("repro_sanitizer_long_holds_total")
        assert counter.value == 1

    def test_short_hold_not_recorded(self, registry):
        sanitizer = LockSanitizer(long_hold_threshold=5.0)
        with sanitizer.installed():
            lock = threading.Lock()
            with lock:
                pass
        assert sanitizer.report().long_holds == []

    def test_none_threshold_disables_timing(self, registry):
        sanitizer = LockSanitizer(long_hold_threshold=None)
        with sanitizer.installed():
            lock = threading.Lock()
            with lock:
                time.sleep(0.01)
        assert sanitizer.report().long_holds == []


class TestContention:
    def test_contended_acquisition_counted(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            lock = threading.Lock()
            entered = threading.Event()

            def holder():
                with lock:
                    entered.set()
                    time.sleep(0.05)

            thread = threading.Thread(target=holder)
            thread.start()
            entered.wait()
            with lock:  # must wait for the holder
                pass
            thread.join()
        assert sanitizer.report().contended >= 1


class TestConditionCompatibility:
    def test_condition_over_sanitized_rlock(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            cond = threading.Condition(threading.RLock())
            items = []

            def consumer():
                with cond:
                    while not items:
                        cond.wait(timeout=2)

            thread = threading.Thread(target=consumer)
            thread.start()
            time.sleep(0.02)
            with cond:
                items.append(1)
                cond.notify()
            thread.join()
        report = sanitizer.report()
        assert report.inversions == []
        assert report.acquisitions >= 3  # enter/exit + wait cycles


class TestReport:
    def test_render_mentions_every_section(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            with threading.Lock():
                pass
        text = sanitizer.report().render()
        assert "acquisitions" in text
        assert "inversions" in text
        assert "long holds" in text

    def test_reset_clears_state(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            with threading.Lock():
                pass
        sanitizer.reset()
        report = sanitizer.report()
        assert report.acquisitions == 0
        assert report.locks_created == 0

    def test_acquisition_counter_exported(self, registry):
        sanitizer = LockSanitizer()
        with sanitizer.installed():
            lock = threading.Lock()
            for _ in range(4):
                with lock:
                    pass
        counter = registry.get("repro_sanitizer_acquisitions_total")
        assert counter.value == 4
