"""SPARQL linter tests — one golden (rule id + span) test per rule."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import Severity, Span, SparqlLinter, VocabularyIndex
from repro.sparql.parser import parse_query

FOAF_NAME = "http://xmlns.com/foaf/0.1/name"
FOAF_KNOWS = "http://xmlns.com/foaf/0.1/knows"
POST = "http://rdfs.org/sioc/types#MicroblogPost"


@pytest.fixture
def structural():
    """No vocabulary: only the structural rules fire."""
    return SparqlLinter()


@pytest.fixture
def vocab_linter():
    vocab = VocabularyIndex(
        predicates=[FOAF_NAME, FOAF_KNOWS], classes=[POST]
    )
    return SparqlLinter(vocabulary=vocab)


def rules_of(diags):
    return [d.rule for d in diags]


def only(diags, rule):
    matching = [d for d in diags if d.rule == rule]
    assert len(matching) == 1, f"expected one {rule}, got {diags}"
    return matching[0]


# ---------------------------------------------------------------------------
# SP001 — projected variable never bound
# ---------------------------------------------------------------------------


def test_sp001_unbound_projection(structural):
    query = "SELECT ?x ?missing WHERE { ?x <http://e/p> ?x }"
    diag = only(structural.lint(query), "SP001")
    assert diag.severity is Severity.ERROR
    start = query.find("?missing")
    assert diag.span == Span(start, start + len("?missing"))


def test_sp001_not_raised_for_aggregate_alias(structural):
    query = (
        "SELECT (COUNT(?x) AS ?n) WHERE { ?x <http://e/p> ?x }"
    )
    assert "SP001" not in rules_of(structural.lint(query))


# ---------------------------------------------------------------------------
# SP002 — variable used in an expression but never bound
# ---------------------------------------------------------------------------


def test_sp002_filter_var_unbound(structural):
    query = "SELECT ?x WHERE { ?x <http://e/p> ?x FILTER(?z > 3) }"
    diag = only(structural.lint(query), "SP002")
    assert diag.severity is Severity.ERROR
    start = query.find("?z")
    assert diag.span == Span(start, start + 2)


def test_sp002_order_by_var_unbound(structural):
    query = "SELECT ?x WHERE { ?x <http://e/p> ?x } ORDER BY ?rating"
    diag = only(structural.lint(query), "SP002")
    assert "?rating" in diag.message


# ---------------------------------------------------------------------------
# SP003 — prefix resolved via the DEFAULT_PREFIXES fallback
# ---------------------------------------------------------------------------


def test_sp003_fallback_prefix(structural):
    query = "SELECT ?n WHERE { ?x foaf:name ?n . ?y foaf:knows ?x }"
    diag = only(structural.lint(query), "SP003")
    assert diag.severity is Severity.WARNING
    start = query.find("foaf:")
    assert diag.span == Span(start, start + len("foaf:"))


def test_sp003_silent_when_declared(structural):
    query = (
        "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
        "SELECT ?n WHERE { ?x foaf:name ?n . ?y foaf:knows ?x }"
    )
    assert "SP003" not in rules_of(structural.lint(query))


def test_parser_records_fallback_prefixes():
    query = "SELECT ?n WHERE { ?x foaf:name ?n }"
    parsed = parse_query(query)
    assert list(parsed.fallback_prefixes) == ["foaf"]
    assert parsed.fallback_prefixes["foaf"] == query.find("foaf:")
    assert parsed.prefixes == {}


# ---------------------------------------------------------------------------
# SP004 / SP005 — unknown predicate / class, with suggestions
# ---------------------------------------------------------------------------


def test_sp004_unknown_predicate_suggests_nearest(vocab_linter):
    query = "SELECT ?n WHERE { ?x <http://xmlns.com/foaf/0.1/nme> ?n }"
    diag = only(vocab_linter.lint(query), "SP004")
    assert diag.severity is Severity.ERROR
    assert diag.suggestion == FOAF_NAME
    start = query.find("<http")
    assert diag.span == Span(start, query.find(">") + 1)


def test_sp005_unknown_class_suggests_nearest(vocab_linter):
    query = (
        "SELECT ?x WHERE "
        "{ ?x a <http://rdfs.org/sioc/types#MicroblogPots> . "
        "?x <http://xmlns.com/foaf/0.1/name> ?x }"
    )
    diag = only(vocab_linter.lint(query), "SP005")
    assert diag.severity is Severity.ERROR
    assert diag.suggestion == POST


def test_known_terms_are_silent(vocab_linter):
    query = (
        "SELECT ?n WHERE { ?x a <%s> . ?x <%s> ?n . ?x <%s> ?x }"
        % (POST, FOAF_NAME, FOAF_KNOWS)
    )
    diags = vocab_linter.lint(query)
    assert "SP004" not in rules_of(diags)
    assert "SP005" not in rules_of(diags)


# ---------------------------------------------------------------------------
# SP006 — disconnected pattern (cartesian product)
# ---------------------------------------------------------------------------


def test_sp006_cartesian_product(structural):
    query = (
        "SELECT ?a ?b WHERE "
        "{ ?a <http://e/p> ?a . ?b <http://e/q> ?b }"
    )
    diag = only(structural.lint(query), "SP006")
    assert diag.severity is Severity.WARNING
    assert "?a" in diag.message and "?b" in diag.message


def test_sp006_filter_connects_components(structural):
    # the Q1 shape: two BGP islands joined only by a geo FILTER
    query = (
        "SELECT ?a ?b WHERE { ?a <http://e/geo> ?x . "
        "?b <http://e/geo> ?y "
        "FILTER(bif:st_intersects(?x, ?y, 0.3)) }"
    )
    assert "SP006" not in rules_of(structural.lint(query))


# ---------------------------------------------------------------------------
# SP007 — always-false filter
# ---------------------------------------------------------------------------


def test_sp007_constant_comparison(structural):
    query = "SELECT ?x WHERE { ?x <http://e/p> ?x FILTER(1 > 2) }"
    diag = only(structural.lint(query), "SP007")
    assert diag.severity is Severity.ERROR


def test_sp007_contradictory_bounds(structural):
    query = (
        "SELECT ?x WHERE { ?x <http://e/r> ?points "
        "FILTER(?points > 5 && ?points < 3) }"
    )
    diag = only(structural.lint(query), "SP007")
    assert "?points" in diag.message
    start = query.find("?points")
    assert diag.span == Span(start, start + len("?points"))


def test_sp007_satisfiable_bounds_are_silent(structural):
    query = (
        "SELECT ?x WHERE { ?x <http://e/r> ?points "
        "FILTER(?points >= 3 && ?points <= 5) }"
    )
    assert "SP007" not in rules_of(structural.lint(query))


# ---------------------------------------------------------------------------
# SP008 — bif: extension misuse
# ---------------------------------------------------------------------------


def test_sp008_unknown_bif_function(structural):
    query = (
        "SELECT ?x WHERE { ?x <http://e/geo> ?g "
        "FILTER(bif:st_intersect(?g, ?g)) }"
    )
    diag = only(structural.lint(query), "SP008")
    assert diag.suggestion == "bif:st_intersects"
    start = query.find("bif:st_intersect")
    assert diag.span == Span(start, start + len("bif:st_intersect"))


def test_sp008_wrong_arity(structural):
    query = (
        "SELECT ?x WHERE { ?x <http://e/geo> ?g "
        "FILTER(bif:st_distance(?g)) }"
    )
    diag = only(structural.lint(query), "SP008")
    assert "2 argument" in diag.message


def test_sp008_non_geometry_constant(structural):
    query = (
        'SELECT ?x WHERE { ?x <http://e/geo> ?g '
        'FILTER(bif:st_intersects(?g, "not a point", 0.3)) }'
    )
    diag = only(structural.lint(query), "SP008")
    assert "geometry" in diag.message


def test_sp008_magic_predicate_needs_string(structural):
    query = (
        "SELECT ?x WHERE { ?x <http://e/title> ?t . "
        "?t bif:contains 42 }"
    )
    diag = only(structural.lint(query), "SP008")
    assert "constant string" in diag.message


# ---------------------------------------------------------------------------
# SP009 — single-use variable
# ---------------------------------------------------------------------------


def test_sp009_single_use_variable(structural):
    query = "SELECT ?x WHERE { ?x <http://e/p> ?x . ?x <http://e/q> ?typo }"
    diag = only(structural.lint(query), "SP009")
    assert diag.severity is Severity.INFO
    start = query.find("?typo")
    assert diag.span == Span(start, start + len("?typo"))


def test_sp009_ignores_scan_all_pattern(structural):
    # ?p/?o under a variable predicate are not typo candidates
    query = "SELECT ?s WHERE { ?s ?p ?o }"
    assert "SP009" not in rules_of(structural.lint(query))


# ---------------------------------------------------------------------------
# Sub-selects and span-less AST input
# ---------------------------------------------------------------------------


def test_subselect_projection_binds_outer_scope(structural):
    query = (
        "SELECT ?n WHERE { { SELECT ?x WHERE "
        "{ ?x <http://e/p> ?x } } ?x <http://e/name> ?n }"
    )
    diags = structural.lint(query)
    assert "SP001" not in rules_of(diags)
    assert "SP006" not in rules_of(diags)


def test_lint_accepts_parsed_ast(structural):
    parsed = parse_query("SELECT ?x ?gone WHERE { ?x <http://e/p> ?x }")
    diag = only(structural.lint(parsed), "SP001")
    assert diag.span is None  # no source text to anchor to


# ---------------------------------------------------------------------------
# The linter never mutates the AST
# ---------------------------------------------------------------------------

_PROPERTY_QUERIES = [
    "SELECT ?x ?missing WHERE { ?x <http://e/p> ?y FILTER(?z > 3) }",
    "SELECT ?n WHERE { ?x foaf:name ?n . ?y foaf:knows ?x }",
    "SELECT ?a WHERE { ?a <http://e/p> ?a . ?b <http://e/q> ?b }",
    "ASK { ?s <http://e/p> ?o FILTER(1 > 2) }",
    "SELECT ?x WHERE { { SELECT ?y WHERE { ?y <http://e/p> ?x } } }",
    "SELECT ?x WHERE { ?x <http://e/r> ?v "
    "FILTER(?v > 5 && ?v < 3) } ORDER BY DESC(?v) LIMIT 3",
]


@given(index=st.integers(min_value=0, max_value=len(_PROPERTY_QUERIES) - 1))
def test_lint_never_mutates_ast(index):
    # terms are immutable (deepcopy is refused), so the reference
    # snapshot is an independent parse of the same text
    parsed = parse_query(_PROPERTY_QUERIES[index])
    snapshot = parse_query(_PROPERTY_QUERIES[index])
    assert parsed == snapshot
    SparqlLinter().lint(parsed)
    SparqlLinter(
        vocabulary=VocabularyIndex(predicates=[FOAF_NAME])
    ).lint(parsed)
    assert parsed == snapshot
