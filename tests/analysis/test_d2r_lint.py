"""D2R mapping linter tests — golden diagnostics for DM001–DM010."""

import pytest

from repro.analysis import MappingLinter, Severity
from repro.d2r import (
    D2RMapping,
    KeywordSplitMap,
    LinkMap,
    PropertyMap,
    TableMap,
    UriPattern,
)
from repro.rdf import DC, FOAF, SIOCT, URIRef
from repro.relational import Database

KEYWORD = URIRef("http://beta.teamlife.it/vocab#keyword")


@pytest.fixture
def db():
    database = Database("lint")
    database.execute(
        """CREATE TABLE users (
             user_id INTEGER PRIMARY KEY AUTOINCREMENT,
             user_name TEXT NOT NULL
           )"""
    )
    database.execute(
        """CREATE TABLE pictures (
             pid INTEGER PRIMARY KEY AUTOINCREMENT,
             owner_id INTEGER REFERENCES users(user_id),
             title TEXT,
             keywords TEXT,
             rating REAL
           )"""
    )
    return database


def base_mapping():
    mapping = D2RMapping()
    mapping.add(TableMap(
        table="users",
        uri_pattern=UriPattern("http://e/users/{user_id}"),
        rdf_class=FOAF.Person,
        properties=[PropertyMap("user_name", FOAF.name)],
    ))
    mapping.add(TableMap(
        table="pictures",
        uri_pattern=UriPattern("http://e/pictures/{pid}"),
        rdf_class=SIOCT.MicroblogPost,
        properties=[PropertyMap("title", DC.title)],
        links=[LinkMap("owner_id", FOAF.maker, "users")],
        keyword_splits=[KeywordSplitMap("keywords", KEYWORD)],
    ))
    return mapping


def lint(mapping, db):
    return MappingLinter().lint(mapping, db, name="test-mapping")


def only(diags, rule):
    matching = [d for d in diags if d.rule == rule]
    assert len(matching) == 1, f"expected one {rule}, got {diags}"
    return matching[0]


def test_valid_mapping_is_clean(db):
    assert lint(base_mapping(), db) == []


def test_dm001_uri_pattern_unknown_column(db):
    mapping = base_mapping()
    mapping.table_maps["users"] = TableMap(
        table="users",
        uri_pattern=UriPattern("http://e/users/{userid}"),
    )
    diag = only(lint(mapping, db), "DM001")
    assert diag.severity is Severity.ERROR
    assert diag.suggestion == "user_id"


def test_dm002_property_unknown_column(db):
    mapping = base_mapping()
    mapping.table_maps["users"].properties.append(
        PropertyMap("user_nme", FOAF.name)
    )
    diag = only(lint(mapping, db), "DM002")
    assert diag.severity is Severity.ERROR
    assert diag.suggestion == "user_name"


def test_dm003_link_to_unmapped_table(db):
    db.execute("CREATE TABLE regions (rid INTEGER PRIMARY KEY)")
    mapping = base_mapping()
    mapping.table_maps["pictures"].links.append(
        LinkMap("pid", FOAF.based_near, "regions")
    )
    diag = only(lint(mapping, db), "DM003")
    assert diag.severity is Severity.ERROR
    assert "regions" in diag.message


def test_dm004_link_target_missing_from_schema(db):
    mapping = base_mapping()
    mapping.table_maps["pictures"].links[0] = LinkMap(
        "owner_id", FOAF.maker, "members"
    )
    diags = lint(mapping, db)
    # unmapped (DM003) *and* unresolvable (DM004)
    assert {"DM003", "DM004"} <= {d.rule for d in diags}
    diag = only(diags, "DM004")
    assert "members" in diag.message


def test_dm005_duplicate_uri_pattern(db):
    mapping = base_mapping()
    mapping.table_maps["pictures"] = TableMap(
        table="pictures",
        uri_pattern=UriPattern("http://e/users/{user_id}"),
    )
    diags = lint(mapping, db)
    diag = only(diags, "DM005")
    assert diag.severity is Severity.WARNING
    assert "collide" in diag.message


def test_dm006_datatype_column_type_mismatch(db):
    mapping = base_mapping()
    mapping.table_maps["pictures"].properties.append(PropertyMap(
        "rating", URIRef("http://e/rating"),
        datatype="http://www.w3.org/2001/XMLSchema#boolean",
    ))
    diag = only(lint(mapping, db), "DM006")
    assert diag.severity is Severity.ERROR
    assert "REAL" in diag.message


def test_dm007_unknown_table(db):
    mapping = base_mapping()
    mapping.add(TableMap(
        table="userz",
        uri_pattern=UriPattern("http://e/userz/{user_id}"),
    ))
    diag = only(lint(mapping, db), "DM007")
    assert diag.severity is Severity.ERROR
    assert diag.suggestion == "users"


def test_dm008_keyword_split_on_numeric_column(db):
    mapping = base_mapping()
    mapping.table_maps["pictures"].keyword_splits.append(
        KeywordSplitMap("rating", KEYWORD)
    )
    diag = only(lint(mapping, db), "DM008")
    assert diag.severity is Severity.WARNING


def test_dm009_constant_uri_pattern(db):
    mapping = base_mapping()
    mapping.table_maps["users"] = TableMap(
        table="users",
        uri_pattern=UriPattern("http://e/the-user"),
    )
    diag = only(lint(mapping, db), "DM009")
    assert diag.severity is Severity.WARNING


def test_dm010_lang_and_datatype_conflict(db):
    mapping = base_mapping()
    mapping.table_maps["pictures"].properties[0] = PropertyMap(
        "title", DC.title, lang="it",
        datatype="http://www.w3.org/2001/XMLSchema#string",
    )
    diag = only(lint(mapping, db), "DM010")
    assert diag.severity is Severity.WARNING


def test_platform_mapping_is_clean():
    from repro.platform import Platform

    platform = Platform()
    assert lint(platform.mapping, platform.db) == []
