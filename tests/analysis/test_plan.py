"""Query planner tests: golden diagnostics SP010-SP016 and EXPLAIN.

Each rewrite pass must (a) fire on a query shaped to trigger it,
emitting its diagnostic, and (b) leave the result rows identical to the
naive evaluation path. The EXPLAIN tests pin the report format: every
algebra node carries an estimated and (after execution) an actual
cardinality.
"""

import pytest

from repro.analysis import GraphStatistics, QueryPlanner
from repro.core import geo_album, rated_album, social_album
from repro.rdf import (
    COMM,
    FOAF,
    GEO,
    Graph,
    Literal,
    RDF,
    RDFS,
    REV,
    SIOCT,
)
from repro.sparql import Evaluator, parse_query
from repro.sparql.algebra import (
    BGPNode,
    DistinctNode,
    EmptyNode,
    FilterNode,
    OrderNode,
    ScanStep,
    walk,
)
from repro.sparql.geo import Point

MOLE_POS = Point(7.6934, 45.0692)
NEAR_MOLE = Point(7.6930, 45.0690)


@pytest.fixture
def graph():
    """A compact Turin scenario with skewed predicate frequencies."""
    g = Graph()
    mole = "http://example.org/Mole_Antonelliana"
    g.add((mole, RDFS.label, Literal("Mole Antonelliana", lang="it")))
    g.add((mole, GEO.geometry, MOLE_POS.to_literal()))
    walter = "http://example.org/u/walter"
    oscar = "http://example.org/u/oscar"
    g.add((walter, FOAF.name, Literal("walter")))
    g.add((oscar, FOAF.name, Literal("oscar")))
    g.add((walter, FOAF.knows, oscar))
    for i in range(12):
        pic = f"http://example.org/pic/{i}"
        g.add((pic, RDF.type, SIOCT.MicroblogPost))
        g.add((pic, GEO.geometry, NEAR_MOLE.to_literal()))
        g.add((pic, COMM["image-data"], Literal(f"http://cdn/{i}.jpg")))
        g.add((pic, FOAF.maker, walter))
        g.add((pic, REV.rating, Literal(i % 5 + 1)))
    return g


def plan_query(graph, text, name=None):
    planner = QueryPlanner(stats=GraphStatistics.collect(graph))
    return planner.plan(parse_query(text), name=name)


def rule_ids(planned):
    return {d.rule for d in planned.diagnostics}


def rows(graph, text, optimize):
    result = Evaluator(graph, optimize=optimize).evaluate(text)
    return sorted(
        tuple(sorted((str(k), str(v)) for k, v in row.items()))
        for row in result
    )


def assert_same_rows(graph, text):
    assert rows(graph, text, True) == rows(graph, text, False)


class TestGoldenDiagnostics:
    def test_sp010_constant_filter_folded(self, graph):
        text = "SELECT ?s WHERE { ?s foaf:name ?n . FILTER(1 < 2) }"
        planned = plan_query(graph, text)
        assert "SP010" in rule_ids(planned)
        # the tautology is gone: no FILTER survives anywhere
        assert not any(
            isinstance(n, FilterNode) for n in walk(planned.plan)
        )
        assert_same_rows(graph, text)

    def test_sp010_false_filter_empties_plan(self, graph):
        text = "SELECT ?s WHERE { ?s foaf:name ?n . FILTER(2 < 1) }"
        planned = plan_query(graph, text)
        assert "SP010" in rule_ids(planned)
        assert any(
            isinstance(n, EmptyNode) for n in walk(planned.plan)
        )
        assert rows(graph, text, True) == []
        assert_same_rows(graph, text)

    def test_sp011_filter_pushed_into_bgp(self, graph):
        text = (
            "SELECT ?p WHERE { ?p rev:rating ?r . FILTER(?r >= 4) }"
        )
        planned = plan_query(graph, text)
        assert "SP011" in rule_ids(planned)
        # the filter now lives inside the BGP (on a scan or as pushed)
        held = []
        for node in walk(planned.plan):
            if isinstance(node, BGPNode):
                held.extend(node.pushed)
                for scan in node.scans:
                    held.extend(scan.filters)
        assert held, "pushed filter must be attached inside the BGP"
        assert_same_rows(graph, text)

    def test_sp012_scans_reordered(self, graph):
        # rev:rating (12 triples) listed before the 1-triple name scan:
        # the planner must put the selective scan first.
        text = (
            'SELECT ?p WHERE { ?p rev:rating ?r . ?p foaf:maker ?u . '
            '?u foaf:name "walter" }'
        )
        planned = plan_query(graph, text)
        assert "SP012" in rule_ids(planned)
        bgp = next(
            n for n in walk(planned.plan) if isinstance(n, BGPNode)
        )
        first = bgp.scans[0]
        assert "name" in str(first.pattern.predicate)
        assert_same_rows(graph, text)

    def test_sp013_cartesian_product_flagged(self, graph):
        text = (
            "SELECT ?a ?b WHERE { ?a foaf:name ?n . ?b rev:rating ?r }"
        )
        planned = plan_query(graph, text)
        assert "SP013" in rule_ids(planned)
        assert_same_rows(graph, text)

    def test_sp014_contradictory_interval_pruned(self, graph):
        text = (
            "SELECT ?p WHERE { ?p rev:rating ?r . "
            "FILTER(?r > 5 && ?r < 2) }"
        )
        planned = plan_query(graph, text)
        assert "SP014" in rule_ids(planned)
        assert rows(graph, text, True) == []
        assert_same_rows(graph, text)

    def test_sp014_absent_predicate_pruned(self, graph):
        text = "SELECT ?p WHERE { ?p dcterms:subject ?c }"
        planned = plan_query(graph, text)
        assert "SP014" in rule_ids(planned)
        assert isinstance(planned.plan.children()[0], EmptyNode) or any(
            isinstance(n, EmptyNode) for n in walk(planned.plan)
        )
        assert_same_rows(graph, text)

    def test_sp015_redundant_distinct_dropped(self, graph):
        text = (
            "SELECT DISTINCT ?u (COUNT(?p) AS ?n) WHERE { "
            "?p foaf:maker ?u } GROUP BY ?u"
        )
        planned = plan_query(graph, text)
        assert "SP015" in rule_ids(planned)
        assert not any(
            isinstance(n, DistinctNode) for n in walk(planned.plan)
        )
        assert_same_rows(graph, text)

    def test_sp016_duplicate_order_key_dropped(self, graph):
        text = (
            "SELECT ?p WHERE { ?p rev:rating ?r } ORDER BY ?r ?r"
        )
        planned = plan_query(graph, text)
        assert "SP016" in rule_ids(planned)
        order = next(
            n for n in walk(planned.plan) if isinstance(n, OrderNode)
        )
        assert len(order.conditions) == 1
        assert_same_rows(graph, text)

    def test_sp016_subselect_order_without_slice(self, graph):
        text = (
            "SELECT ?p WHERE { "
            "{ SELECT ?p WHERE { ?p rev:rating ?r } ORDER BY ?r } }"
        )
        planned = plan_query(graph, text)
        assert "SP016" in rule_ids(planned)
        assert_same_rows(graph, text)

    def test_subselect_order_with_limit_kept(self, graph):
        # LIMIT makes the inner ORDER BY semantically load-bearing
        text = (
            "SELECT ?p WHERE { "
            "{ SELECT ?p WHERE { ?p rev:rating ?r } "
            "ORDER BY DESC(?r) LIMIT 3 } }"
        )
        planned = plan_query(graph, text)
        assert "SP016" not in rule_ids(planned)
        assert_same_rows(graph, text)


class TestPlannerMechanics:
    def test_planning_does_not_mutate_ast(self, graph):
        text = social_album().query
        parsed = parse_query(text)
        reference = parse_query(text)
        plan_query(graph, text)
        planner = QueryPlanner(stats=GraphStatistics.collect(graph))
        planner.plan(parsed)
        assert parsed == reference

    def test_pass_subset_by_name(self, graph):
        planner = QueryPlanner(passes=["fold_constants"])
        planned = planner.plan(parse_query(
            "SELECT ?s WHERE { ?s foaf:name ?n . FILTER(1 < 2) }"
        ))
        assert planned.passes == ["fold_constants"]
        assert "SP010" in rule_ids(planned)

    def test_no_stats_still_plans(self, graph):
        planner = QueryPlanner()
        planned = planner.plan(parse_query(rated_album().query))
        assert planned.plan is not None

    def test_scan_actual_counts_recorded(self, graph):
        evaluator = Evaluator(graph)
        explanation = evaluator.explain(
            "SELECT ?p WHERE { ?p rev:rating ?r }"
        )
        scans = [
            n for n in walk(explanation.planned.plan)
            if isinstance(n, ScanStep)
        ]
        assert scans and all(s.actual_rows == 12 for s in scans)


class TestExplain:
    @pytest.mark.parametrize("album", [
        pytest.param(geo_album, id="Q1"),
        pytest.param(social_album, id="Q2"),
        pytest.param(rated_album, id="Q3"),
    ])
    def test_explain_reports_est_and_actual(self, graph, album):
        evaluator = Evaluator(graph)
        report = evaluator.explain(album().query).render()
        assert "est=" in report
        assert "actual=" in report
        assert "rows:" in report
        assert "passes:" in report

    def test_explain_compare_times_naive(self, graph):
        evaluator = Evaluator(graph)
        report = evaluator.explain(
            rated_album().query, compare=True
        ).render()
        assert "naive:" in report
        assert "speedup:" in report

    def test_explain_without_execution(self, graph):
        evaluator = Evaluator(graph)
        report = evaluator.explain(
            rated_album().query, execute=False
        ).render()
        assert "est=" in report
        assert "actual=" not in report
