"""Regression: statistics fingerprinting for MVCC store snapshots.

A :class:`repro.store.SnapshotGraph` has no ``_version`` counter (it is
immutable), so the old fingerprint fell back to the always-stale
sentinel — every evaluator over an unchanged store re-collected
statistics from scratch. The fingerprint now keys on the snapshot's
``generation``, and commits maintain the snapshot incrementally, so
full rebuilds happen only on the first collection.
"""

from repro.analysis.stats import GraphStatistics
from repro.obs import get_registry, set_registry
from repro.obs.metrics import MetricsRegistry
from repro.rdf import RDF, URIRef
from repro.sparql import Evaluator
from repro.store import QuadStore

EX = "http://example.org/"
CITY = URIRef(EX + "City")


def _rebuilds():
    counter = get_registry().counter(
        "repro_graph_stats_rebuilds_total",
        "Full statistics collection passes over a graph.",
    )
    return counter.value


def _store(n=3):
    store = QuadStore()
    batch = store.batch()
    for i in range(n):
        batch.insert((URIRef(f"{EX}s{i}"), RDF.type, CITY))
    store.commit(batch)
    return store


class TestSnapshotFingerprint:
    def setup_method(self):
        self._previous = set_registry(MetricsRegistry())

    def teardown_method(self):
        set_registry(self._previous)

    def test_fingerprint_is_the_generation(self):
        store = _store()
        view = store.head()
        stats = GraphStatistics.collect(view)
        assert stats.fingerprint == view.generation == 1

    def test_same_generation_never_rebuilds(self):
        """The regression: N evaluators over one unchanged store must
        share a single collection pass."""
        store = _store()
        first = Evaluator(store)._statistics()
        baseline = _rebuilds()
        for _ in range(5):
            assert Evaluator(store)._statistics() is first
        assert _rebuilds() == baseline

    def test_commit_maintains_without_rebuilding(self):
        """A commit after the first collection updates the cached
        snapshot incrementally — rebuild count stays at 1."""
        store = _store()
        stats = store.statistics()
        assert stats.class_counts[CITY] == 3
        assert _rebuilds() == 1

        store.insert((URIRef(EX + "s9"), RDF.type, CITY))
        maintained = store.statistics()
        assert maintained.class_counts[CITY] == 4
        assert maintained.fingerprint == store.generation
        assert _rebuilds() == 1  # the delta path, not a re-scan

        deltas = get_registry().counter(
            "repro_graph_stats_delta_updates_total",
            "Incremental statistics maintenance passes "
            "(O(delta) commits that avoided a full rebuild).",
        )
        assert deltas.value >= 1

    def test_distinct_generations_are_distinct_fingerprints(self):
        store = _store()
        before = GraphStatistics.collect(store.head())
        store.insert((URIRef(EX + "s9"), RDF.type, CITY))
        after = GraphStatistics.collect(store.head())
        assert before.fingerprint != after.fingerprint
