"""Runtime store-sanitizer tests: traffic counters, mutation-during-
iteration detection, Graph-writes contract enforcement, and the
observational-equivalence regression (a sanitized run returns the same
query results as an unsanitized one)."""

from repro.analysis.store_sanitizer import StoreSanitizer
from repro.obs import get_registry
from repro.rdf import FOAF, Graph, RDF, SIOCT, URIRef
from repro.sparql import Evaluator

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


def populated(n=5):
    graph = Graph()
    for i in range(n):
        graph.add((ex(f"pic{i}"), RDF.type, SIOCT.MicroblogPost))
        graph.add((ex(f"pic{i}"), FOAF.maker, ex("walter")))
    return graph


def counter_value(name):
    return get_registry().counter(name, "").value


class TestTrafficCounters:
    def test_reads_and_writes_counted(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        reads_before = counter_value("repro_store_reads_total")
        writes_before = counter_value("repro_store_writes_total")
        with sanitizer.installed():
            graph.add((ex("new"), RDF.type, SIOCT.MicroblogPost))
            list(graph.triples((None, None, None)))
        report = sanitizer.report()
        assert report.writes == 1
        assert report.reads >= 1
        assert report.violations == 0
        assert (
            counter_value("repro_store_reads_total") - reads_before
            == report.reads
        )
        assert (
            counter_value("repro_store_writes_total") - writes_before
            == report.writes
        )

    def test_add_all_counts_one_write_per_triple(self):
        graph = Graph()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            graph.add_all(
                (ex(f"s{i}"), RDF.type, SIOCT.MicroblogPost)
                for i in range(3)
            )
        assert sanitizer.report().writes == 3

    def test_uninstalled_observes_nothing(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        list(graph.triples((None, None, None)))
        graph.add((ex("x"), RDF.type, SIOCT.MicroblogPost))
        report = sanitizer.report()
        assert report.reads == 0 and report.writes == 0

    def test_disabled_sanitizer_is_noop(self):
        graph = populated()
        sanitizer = StoreSanitizer(enabled=False)
        with sanitizer.installed():
            graph.add((ex("x"), RDF.type, SIOCT.MicroblogPost))
            list(graph.triples((None, None, None)))
        report = sanitizer.report()
        assert report.reads == 0 and report.writes == 0


class TestIterMutation:
    def test_mutation_during_iteration_detected(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        iter_before = counter_value("repro_store_iter_mutations_total")
        with sanitizer.installed():
            for index, triple in enumerate(
                graph.triples((None, RDF.type, None))
            ):
                if index == 0:
                    # a different predicate: the iterated index survives,
                    # only the version moves — the subtle case a plain
                    # RuntimeError would never surface
                    graph.add(
                        (ex("intruder"), FOAF.maker, ex("walter"))
                    )
        report = sanitizer.report()
        assert len(report.iter_mutations) == 1
        mutation = report.iter_mutations[0]
        assert mutation.seen_version > mutation.start_version
        assert "mutated during iteration" in mutation.describe()
        assert (
            counter_value("repro_store_iter_mutations_total")
            - iter_before == 1
        )

    def test_colliding_mutation_recorded_before_runtime_error(self):
        # writing into the very index being iterated makes the dict
        # raise; the sanitizer still records the violation first
        import pytest

        graph = populated()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            with pytest.raises(RuntimeError):
                for _ in graph.triples((None, RDF.type, None)):
                    graph.add(
                        (ex("intruder"), RDF.type,
                         SIOCT.MicroblogPost)
                    )
        assert len(sanitizer.report().iter_mutations) == 1

    def test_one_violation_per_iterator(self):
        # many writes during one live iteration: still one record
        graph = populated(8)
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            for index, _ in enumerate(
                graph.triples((None, RDF.type, None))
            ):
                graph.add(
                    (ex(f"w{index}"), FOAF.maker, ex("walter"))
                )
        assert len(sanitizer.report().iter_mutations) == 1

    def test_materialize_first_is_clean(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            matches = list(graph.triples((None, RDF.type, None)))
            for s, p, o in matches:
                graph.add((s, FOAF.maker, ex("copy")))
        assert sanitizer.report().iter_mutations == []

    def test_graph_remove_is_not_flagged(self):
        # Graph.remove materializes its matches before deleting — the
        # store's own sanctioned pattern must stay clean
        graph = populated()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            graph.remove((None, FOAF.maker, None))
        assert sanitizer.report().iter_mutations == []


class TestContractViolations:
    def _writer_module(self, doc):
        namespace = {
            "__name__": "fake.reader",
            "__doc__": doc,
        }
        exec(
            compile(
                "def write(graph, triple):\n"
                "    graph.add(triple)\n",
                "fake_reader.py", "exec",
            ),
            namespace,
        )
        return namespace["write"]

    def test_write_under_none_contract_flagged(self):
        write = self._writer_module(
            "Reader module.\n\nGraph-writes: none\n"
        )
        graph = Graph()
        sanitizer = StoreSanitizer()
        contract_before = counter_value(
            "repro_store_contract_violations_total"
        )
        with sanitizer.installed():
            write(graph, (ex("s"), RDF.type, SIOCT.MicroblogPost))
        report = sanitizer.report()
        assert len(report.contract_violations) == 1
        violation = report.contract_violations[0]
        assert violation.module == "fake.reader"
        assert violation.op == "insert"
        assert "Graph-writes: none" in violation.describe()
        assert (
            counter_value("repro_store_contract_violations_total")
            - contract_before == 1
        )

    def test_declared_writer_is_clean(self):
        write = self._writer_module(
            "Writer module.\n\nGraph-writes: the caller's graph\n"
        )
        graph = Graph()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            write(graph, (ex("s"), RDF.type, SIOCT.MicroblogPost))
        assert sanitizer.report().contract_violations == []

    def test_undeclared_module_not_flagged_at_runtime(self):
        # missing contracts are the static EF006 warning's job
        write = self._writer_module("Writer module, no contract.")
        graph = Graph()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            write(graph, (ex("s"), RDF.type, SIOCT.MicroblogPost))
        assert sanitizer.report().contract_violations == []


class TestObservationalEquivalence:
    QUERY = "SELECT ?p WHERE { ?p a sioct:MicroblogPost }"

    def test_sanitized_query_results_identical(self):
        # the REPRO_SANITIZE=1 invariant: wrapping the store must not
        # change what queries return
        plain = [
            dict(row)
            for row in Evaluator(populated()).evaluate(self.QUERY)
        ]
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            wrapped = [
                dict(row)
                for row in Evaluator(populated()).evaluate(self.QUERY)
            ]
        assert wrapped == plain
        report = sanitizer.report()
        assert report.reads > 0  # the evaluator's reads were observed
        assert report.violations == 0

    def test_entry_points_restored_after_uninstall(self):
        original_triples = Graph.__dict__["triples"]
        original_insert = Graph.__dict__["insert"]
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            assert Graph.__dict__["triples"] is not original_triples
            assert Graph.__dict__["insert"] is not original_insert
        assert Graph.__dict__["triples"] is original_triples
        assert Graph.__dict__["insert"] is original_insert


class TestReportRendering:
    def test_render_includes_violations(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            for index, _ in enumerate(
                graph.triples((None, RDF.type, None))
            ):
                if index == 0:
                    graph.add((ex("w"), FOAF.maker, ex("walter")))
        rendered = sanitizer.report().render()
        assert "ITER MUTATION" in rendered
        assert "reads:" in rendered

    def test_reset_clears_state(self):
        graph = populated()
        sanitizer = StoreSanitizer()
        with sanitizer.installed():
            graph.add((ex("x"), RDF.type, SIOCT.MicroblogPost))
        sanitizer.reset()
        report = sanitizer.report()
        assert report.writes == 0 and report.violations == 0
