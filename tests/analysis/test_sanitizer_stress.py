"""Stress test: the full parallel annotation pipeline under the
runtime lock sanitizer.

This is the ISSUE's acceptance gate for the tier-1 thread paths: a
``BatchAnnotator(workers=4)`` run over a real synthetic catalog — the
resilience layer, the obs registry, the graph lock and the checkpoint
drain all active at once — must produce zero lock-order inversions and
exactly the same stats and triples as the sequential run.
"""

import pytest

from repro.core import BatchAnnotator
from repro.platform import Platform
from repro.rdf import Graph
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)


@pytest.fixture(scope="module")
def catalog_config():
    return WorkloadConfig(
        n_users=5, n_contents=40, cities=("Turin",), seed=11,
    )


def build_catalog(config):
    platform = Platform()
    populate_platform(platform, generate_workload(config))
    return platform


def test_parallel_batch_under_sanitizer(lock_sanitizer, catalog_config):
    # sequential reference first — also sanitized, so the single-worker
    # path contributes its edges to the same order graph
    seq_graph = Graph()
    seq_stats = BatchAnnotator(
        build_catalog(catalog_config), seq_graph, batch_size=10,
    ).run()

    par_graph = Graph()
    par_stats = BatchAnnotator(
        build_catalog(catalog_config), par_graph,
        batch_size=10, workers=4,
    ).run()

    assert par_stats.summary() == seq_stats.summary()
    assert set(par_graph) == set(seq_graph)
    assert len(par_graph) == len(seq_graph)

    report = lock_sanitizer.report()
    assert report.inversions == []
    # the workload actually exercised locks (the assertion above is
    # meaningless on a run the sanitizer never saw)
    assert report.acquisitions > 0
    assert report.locks_created > 0


def test_sanitizer_sees_the_resilience_layer(lock_sanitizer):
    """The wrapped resolvers' breaker/cache locks show up in the
    sanitizer's order graph when annotation runs through them."""
    from repro.core.annotator import SemanticAnnotator
    from repro.core.filtering import SemanticFilter
    from repro.lod import build_lod_corpus
    from repro.resolvers import (
        SemanticBroker,
        default_resolvers,
        wrap_resilient,
    )

    corpus = build_lod_corpus()
    platform = build_catalog(WorkloadConfig(
        n_users=3, n_contents=12, cities=("Turin",), seed=7,
    ))
    platform.annotator = SemanticAnnotator(
        SemanticBroker(wrap_resilient(default_resolvers(corpus))),
        SemanticFilter(corpus),
    )
    stats = BatchAnnotator(
        platform, Graph(), batch_size=6, workers=4,
    ).run()
    assert stats.processed == 12
    assert stats.failed == 0

    report = lock_sanitizer.report()
    assert report.inversions == []
    # the resilience layer hand-rolls one lock per breaker/cache/stats
    # instance; four resolvers wrapped → well over four sanitized locks
    assert report.locks_created >= 4
    assert report.acquisitions > 100
