"""Self-check, file linting, the diagnostics model and the CLI."""

from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    RULES,
    Severity,
    Span,
    builtin_queries,
    extract_sparql_strings,
    lint_path,
    self_check,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


# ---------------------------------------------------------------------------
# Diagnostics model
# ---------------------------------------------------------------------------


def test_severity_ordering_and_parse():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.parse("Error") is Severity.ERROR
    with pytest.raises(ValueError):
        Severity.parse("fatal")


def test_span_validation_and_slice():
    assert Span(2, 5).slice("abcdefg") == "cde"
    with pytest.raises(ValueError):
        Span(-1, 3)
    with pytest.raises(ValueError):
        Span(5, 2)


def test_diagnostic_render_format():
    diag = Diagnostic(
        rule="SP004", severity=Severity.ERROR, message="bad predicate",
        span=Span(10, 20), suggestion="foaf:name", source="Q9",
    )
    assert diag.render() == (
        "Q9:10: error SP004 bad predicate (did you mean 'foaf:name'?)"
    )


def test_report_aggregation_and_raise():
    report = DiagnosticReport()
    report.add(Diagnostic("SP009", Severity.INFO, "info"))
    report.add(Diagnostic("SP003", Severity.WARNING, "warn"))
    report.add(Diagnostic("SP004", Severity.ERROR, "err"))
    assert len(report) == 3
    assert report.rules() == ["SP009", "SP003", "SP004"]
    assert [d.rule for d in report.errors] == ["SP004"]
    assert [d.rule for d in report.warnings] == ["SP003"]
    assert report.render(Severity.WARNING).count("\n") == 1
    with pytest.raises(AnalysisError) as excinfo:
        report.raise_for_errors()
    assert excinfo.value.diagnostics[0].rule == "SP004"


def test_rule_registry_covers_all_components():
    components = {rule.component for rule in RULES.values()}
    assert components == {
        "sparql", "d2r", "shape", "concurrency", "effects",
    }
    assert len(RULES) >= 40


# ---------------------------------------------------------------------------
# Self-check: the system's own artifacts must be clean
# ---------------------------------------------------------------------------


def test_builtin_queries_cover_the_paper():
    names = [name for name, _ in builtin_queries()]
    assert names == ["Q1", "Q2", "Q3", "M1", "builder"]


def test_self_check_is_clean():
    report = self_check()
    assert list(report) == [], report.render()


def test_examples_and_benchmarks_are_clean():
    for directory in ("examples", "benchmarks"):
        diags = lint_path(REPO_ROOT / directory)
        errors = [d for d in diags if d.severity >= Severity.WARNING]
        assert errors == [], [d.render() for d in errors]


# ---------------------------------------------------------------------------
# File linting
# ---------------------------------------------------------------------------


def test_lint_rq_file_with_error(tmp_path):
    query_file = tmp_path / "bad.rq"
    query_file.write_text(
        "SELECT ?n WHERE { ?x <http://xmlns.com/foaf/0.1/nmae> ?n }"
    )
    diags = lint_path(query_file)
    assert any(d.rule == "SP004" for d in diags)


def test_lint_unparseable_rq_is_sp000(tmp_path):
    query_file = tmp_path / "broken.rq"
    query_file.write_text("SELECT WHERE {{{")
    diags = lint_path(query_file)
    assert [d.rule for d in diags] == ["SP000"]
    assert diags[0].severity is Severity.ERROR


def test_lint_unsupported_suffix_is_sp000(tmp_path):
    other = tmp_path / "data.csv"
    other.write_text("a,b\n")
    diags = lint_path(other)
    assert [d.rule for d in diags] == ["SP000"]


def test_extract_sparql_strings_finds_queries():
    source = (
        "QUERY = '''SELECT ?s WHERE { ?s ?p ?o }'''\n"
        "FRAGMENT = 'WHERE is this going'\n"
        "F = f'SELECT {x} WHERE'\n"
    )
    found = extract_sparql_strings(source)
    assert len(found) == 1
    assert found[0][0].startswith("SELECT ?s")
    assert found[0][1] == 1


def test_lint_python_file(tmp_path):
    py_file = tmp_path / "mod.py"
    py_file.write_text(
        'Q = "SELECT ?n WHERE { ?x foaf:name ?n . ?x foaf:knows ?x }"\n'
    )
    diags = lint_path(py_file)
    assert [d.rule for d in diags] == ["SP003"]
    assert diags[0].source.endswith("mod.py:1")


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_self_check_passes(capsys):
    assert main(["lint", "--self-check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_lint_nothing_to_do(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().err


def test_cli_lint_reports_unknown_predicate(tmp_path, capsys):
    query_file = tmp_path / "album.rq"
    query_file.write_text(
        "SELECT ?n WHERE { ?x <http://xmlns.com/foaf/0.1/nmae> ?n }"
    )
    assert main(["lint", str(query_file)]) == 1
    out = capsys.readouterr().out
    assert "SP004" in out
    assert "did you mean" in out
    assert "foaf/0.1/name" in out


def test_cli_lint_min_severity_filter(tmp_path, capsys):
    py_file = tmp_path / "warn_only.py"
    py_file.write_text(
        'Q = "SELECT ?n WHERE { ?x foaf:name ?n . ?x foaf:knows ?x }"\n'
    )
    assert main(["lint", "--min-severity", "error", str(py_file)]) == 0
    out = capsys.readouterr().out
    assert "SP003" not in out
    assert "(0 shown, 0 error(s))" in out


def test_cli_lint_queries_and_mapping(capsys):
    assert main(["lint", "--queries", "--mapping"]) == 0
    assert "0 error(s)" in capsys.readouterr().out
