"""Graph shape checker tests — SH001–SH004."""

import pytest

from repro.analysis import ShapeChecker
from repro.analysis.diagnostics import Severity
from repro.rdf import FOAF, GEO, Graph, Literal, RDF, RDFS, URIRef

ALICE = URIRef("http://e/alice")
BOB = URIRef("http://e/bob")
PIC = URIRef("http://e/pic/1")
AGENT = URIRef("http://xmlns.com/foaf/0.1/Agent")


@pytest.fixture
def ontology():
    graph = Graph()
    graph.add((FOAF.knows, RDFS.domain, FOAF.Person))
    graph.add((FOAF.knows, RDFS.range, FOAF.Person))
    graph.add((FOAF.Person, RDFS.subClassOf, AGENT))
    return graph


def check(ontology, graph, cardinalities=None):
    checker = ShapeChecker(ontology, cardinalities=cardinalities)
    return checker.check(graph, name="test-graph")


def only(diags, rule):
    matching = [d for d in diags if d.rule == rule]
    assert len(matching) == 1, f"expected one {rule}, got {diags}"
    return matching[0]


def test_conforming_graph_is_clean(ontology):
    graph = Graph()
    graph.add((ALICE, RDF.type, FOAF.Person))
    graph.add((BOB, RDF.type, FOAF.Person))
    graph.add((ALICE, FOAF.knows, BOB))
    assert check(ontology, graph) == []


def test_sh001_domain_violation(ontology):
    graph = Graph()
    graph.add((PIC, RDF.type, URIRef("http://e/Picture")))
    graph.add((BOB, RDF.type, FOAF.Person))
    graph.add((PIC, FOAF.knows, BOB))
    diag = only(check(ontology, graph), "SH001")
    assert diag.severity is Severity.WARNING
    assert "domain" in diag.message


def test_sh001_superclass_satisfies_domain():
    # domain declared on the *superclass*: instances of the subclass pass
    ontology = Graph()
    ontology.add((FOAF.knows, RDFS.domain, AGENT))
    ontology.add((FOAF.Person, RDFS.subClassOf, AGENT))
    graph = Graph()
    graph.add((ALICE, RDF.type, FOAF.Person))
    graph.add((ALICE, FOAF.knows, BOB))
    assert check(ontology, graph) == []


def test_sh002_literal_in_object_position(ontology):
    graph = Graph()
    graph.add((ALICE, RDF.type, FOAF.Person))
    graph.add((ALICE, FOAF.knows, Literal("bob")))
    diag = only(check(ontology, graph), "SH002")
    assert diag.severity is Severity.WARNING
    assert "'bob'" in diag.message


def test_sh002_typed_object_outside_range(ontology):
    graph = Graph()
    graph.add((ALICE, RDF.type, FOAF.Person))
    graph.add((PIC, RDF.type, URIRef("http://e/Picture")))
    graph.add((ALICE, FOAF.knows, PIC))
    diag = only(check(ontology, graph), "SH002")
    assert "range" in diag.message


def test_sh002_untyped_object_passes_open_world(ontology):
    graph = Graph()
    graph.add((ALICE, RDF.type, FOAF.Person))
    graph.add((ALICE, FOAF.knows, BOB))  # BOB untyped
    assert check(ontology, graph) == []


def test_sh003_cardinality_exceeded(ontology):
    graph = Graph()
    graph.add((PIC, GEO.geometry, Literal("POINT(7.69 45.07)")))
    graph.add((PIC, GEO.geometry, Literal("POINT(12.49 41.89)")))
    diag = only(
        check(ontology, graph, cardinalities={str(GEO.geometry): 1}),
        "SH003",
    )
    assert diag.severity is Severity.WARNING
    assert "declared max 1" in diag.message


def test_sh004_untyped_subject(ontology):
    graph = Graph()
    graph.add((BOB, RDF.type, FOAF.Person))
    graph.add((ALICE, FOAF.knows, BOB))  # ALICE untyped
    diag = only(check(ontology, graph), "SH004")
    assert diag.severity is Severity.INFO
