"""Property tests: the planner is semantics-preserving by construction.

For workload-generated graphs and the paper's parameterized query
family, every permutation of the rewrite-pass pipeline must produce the
same multiset of rows as the naive evaluator, and planning must never
mutate the parsed AST. Hypothesis drives the graph seed, the query
parameters and the pass order.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis import DEFAULT_PASSES, GraphStatistics, QueryPlanner
from repro.analysis.plan import estimate as estimate_pass
from repro.core import geo_album, rated_album, social_album
from repro.platform import Platform
from repro.sparql import parse_query
from repro.sparql.evaluator import Evaluator
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)

_GRAPH_CACHE = {}


def workload_graph(seed, n_contents=25):
    key = (seed, n_contents)
    if key not in _GRAPH_CACHE:
        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=6,
            n_contents=n_contents,
            cities=("Turin",),
            seed=seed,
        ))
        populate_platform(platform, workload)
        platform.semanticize()
        _GRAPH_CACHE[key] = platform.union_graph()
    return _GRAPH_CACHE[key]


def multiset(result):
    return sorted(
        tuple(sorted((str(k), str(v)) for k, v in row.items()))
        for row in result
    )


QUERIES = st.one_of(
    st.builds(
        lambda radius: geo_album(radius_km=radius).query,
        st.sampled_from([0.05, 0.3, 1.0, 5.0]),
    ),
    st.builds(
        lambda radius, friend: social_album(
            radius_km=radius, friend_of=friend
        ).query,
        st.sampled_from([0.3, 2.0]),
        st.sampled_from(["oscar", "walter", "nobody"]),
    ),
    st.builds(
        lambda radius: rated_album(radius_km=radius).query,
        st.sampled_from([0.3, 2.0]),
    ),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=3),
    text=QUERIES,
    order=st.permutations(list(DEFAULT_PASSES)),
)
def test_any_pass_order_matches_naive(seed, text, order):
    graph = workload_graph(seed)
    naive = multiset(Evaluator(graph, optimize=False).evaluate(text))
    planner = QueryPlanner(
        stats=GraphStatistics.collect(graph), passes=order
    )
    evaluator = Evaluator(graph, planner=planner)
    optimized = multiset(evaluator.evaluate(text))
    assert optimized == naive


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=3),
    text=QUERIES,
    order=st.permutations(list(DEFAULT_PASSES)),
)
def test_planning_never_mutates_ast(seed, text, order):
    graph = workload_graph(seed)
    parsed = parse_query(text)
    reference = parse_query(text)
    planner = QueryPlanner(
        stats=GraphStatistics.collect(graph), passes=order
    )
    planner.plan(parsed)
    assert parsed == reference


def test_estimate_runs_after_any_permutation():
    # estimate() is appended by the planner, not part of the permuted
    # pipeline: a planner built with a single pass still annotates.
    graph = workload_graph(0)
    planner = QueryPlanner(
        stats=GraphStatistics.collect(graph),
        passes=[DEFAULT_PASSES[0]],
    )
    planned = planner.plan(parse_query(geo_album().query))
    assert planned.plan.est_rows is not None
    assert estimate_pass is not None
