"""Regression: GraphStatistics staleness detection for graphs without
a ``_version`` counter.

The old fingerprint fell back to ``len(graph)``, so a same-size
mutation (remove one triple, add another) served stale planner
statistics. The fallback is now an always-stale sentinel.
"""

from repro.analysis.stats import GraphStatistics
from repro.rdf import Graph, RDF, URIRef
from repro.sparql import Evaluator

EX = "http://example.org/"


def _graph():
    graph = Graph()
    graph.add((URIRef(EX + "a"), RDF.type, URIRef(EX + "City")))
    graph.add((URIRef(EX + "b"), RDF.type, URIRef(EX + "City")))
    return graph


class VersionlessGraph:
    """A graph-like proxy without the ``_version`` mutation counter."""

    def __init__(self, graph):
        self._graph = graph

    def predicate_statistics(self):
        return self._graph.predicate_statistics()

    def triples(self, pattern):
        return self._graph.triples(pattern)

    def __len__(self):
        return len(self._graph)


class TestFingerprint:
    def test_versioned_graph_uses_version(self):
        graph = _graph()
        stats = GraphStatistics.collect(graph)
        assert stats.fingerprint == graph._version

    def test_versionless_fingerprint_is_always_stale(self):
        proxy = VersionlessGraph(_graph())
        first = GraphStatistics.collect(proxy)
        second = GraphStatistics.collect(proxy)
        # the sentinel never equals anything observed later — in
        # particular not len(graph) and not another snapshot's sentinel
        assert first.fingerprint != len(proxy)
        assert first.fingerprint != second.fingerprint

    def test_same_size_mutation_not_served_stale(self):
        """The bug scenario: remove one triple, add another — size
        unchanged — then ask for statistics again."""
        graph = _graph()
        proxy = VersionlessGraph(graph)
        evaluator = Evaluator(proxy)
        before = evaluator._statistics()
        assert before.class_counts[URIRef(EX + "City")] == 2

        graph.remove((URIRef(EX + "b"), RDF.type, URIRef(EX + "City")))
        graph.add((URIRef(EX + "b"), RDF.type, URIRef(EX + "Town")))
        assert len(proxy) == 2  # same size — the old fallback's trap

        after = evaluator._statistics()
        assert after is not before
        assert after.class_counts[URIRef(EX + "City")] == 1
        assert after.class_counts[URIRef(EX + "Town")] == 1

    def test_versioned_graph_cache_still_shared(self):
        """The fix must not break the cheap path: an unchanged
        versioned graph keeps serving the cached snapshot."""
        graph = _graph()
        evaluator = Evaluator(graph)
        first = evaluator._statistics()
        assert Evaluator(graph)._statistics() is first
        graph.add((URIRef(EX + "c"), RDF.type, URIRef(EX + "City")))
        assert Evaluator(graph)._statistics() is not first
