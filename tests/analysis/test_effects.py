"""Store-effect analyzer tests — one golden (rule id) test per EF rule
on a crafted fixture, an ``# ef: allow`` suppression counterpart for
each, plus the interprocedural plumbing and the repo's own clean
baseline (the PR 1 lint-test idiom)."""

from pathlib import Path
from textwrap import dedent

import repro
from repro.analysis import Severity
from repro.analysis.effects import (
    StoreEffectAnalyzer,
    analyze_effects,
)


def lint(source, name="fixture.py"):
    return StoreEffectAnalyzer().analyze_source(dedent(source), name)


def rules_of(diags):
    return [d.rule for d in diags]


def only(diags, rule):
    matching = [d for d in diags if d.rule == rule]
    assert len(matching) == 1, f"expected one {rule}, got {diags}"
    return matching[0]


def suppressed(source, rule, marker):
    """Re-lint ``source`` with the pragma appended to ``marker``'s
    line; the rule must disappear while nothing else changes."""
    patched = dedent(source).replace(
        marker, f"{marker}  # ef: allow={rule}"
    )
    assert patched != dedent(source), f"marker {marker!r} not found"
    return [d for d in lint(patched) if d.rule == rule]


# ---------------------------------------------------------------------------
# EF001 — direct index mutation outside repro.rdf.graph
# ---------------------------------------------------------------------------


EF001_ASSIGN = '''
def poke(graph, s):
    graph._spo[s] = {}
'''

EF001_METHOD = '''
def wipe(graph):
    graph._spo.clear()
'''


def test_ef001_index_assignment():
    diag = only(lint(EF001_ASSIGN), "EF001")
    assert diag.severity is Severity.ERROR
    assert "_spo" in diag.message
    assert diag.line == 3


def test_ef001_index_method_mutation():
    diag = only(lint(EF001_METHOD), "EF001")
    assert "bypasses" in diag.message


def test_ef001_suppressed():
    assert suppressed(EF001_ASSIGN, "EF001", "graph._spo[s] = {}") == []


def test_ef001_allowed_inside_graph_module():
    # the owning module may touch its own indexes
    diags = lint(EF001_ASSIGN, name="src/repro/rdf/graph.py")
    assert "EF001" not in rules_of(diags)


# ---------------------------------------------------------------------------
# EF002 — write while iterating a live read generator
# ---------------------------------------------------------------------------


EF002_LOOP = '''
def prune(graph, bad):
    for s, p, o in graph.triples((None, None, None)):
        if o == bad:
            graph.remove((s, p, o))
'''

EF002_PRODUCER = '''
def scan_triples(db):
    for row in db.rows():
        yield row

def load(graph, db):
    graph.add_all(scan_triples(db))
'''


def test_ef002_mutation_inside_live_loop():
    diag = only(lint(EF002_LOOP), "EF002")
    assert diag.severity is Severity.ERROR
    assert "materialize" in diag.message


def test_ef002_producer_feeding_add_all():
    diag = only(lint(EF002_PRODUCER), "EF002")
    assert "scan_triples" in diag.message
    assert "list(" in (diag.suggestion or "")


def test_ef002_suppressed():
    assert suppressed(
        EF002_LOOP, "EF002", "graph.remove((s, p, o))"
    ) == []


def test_ef002_materialized_loop_is_clean():
    clean = '''
    def prune(graph, bad):
        doomed = list(graph.triples((None, None, bad)))
        for triple in doomed:
            graph.remove(triple)
    '''
    assert "EF002" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# EF003 — mutating a union-derived copy
# ---------------------------------------------------------------------------


EF003_DIRECT = '''
def publish(ds, triple):
    merged = ds.union_graph()
    merged.add(triple)
    return merged
'''

EF003_CALL = '''
def extend(graph, triple):
    graph.add(triple)

def publish(ds, triple):
    merged = ds.union_graph()
    extend(merged, triple)
'''


def test_ef003_direct_write_to_union_copy():
    diag = only(lint(EF003_DIRECT), "EF003")
    assert diag.severity is Severity.ERROR
    assert "never reaches" in diag.message


def test_ef003_union_copy_passed_to_writer():
    diag = only(lint(EF003_CALL), "EF003")
    assert "extend()" in diag.message


def test_ef003_suppressed():
    assert suppressed(EF003_DIRECT, "EF003", "merged.add(triple)") == []


def test_ef003_build_then_freeze_is_sanctioned():
    clean = '''
    from repro.rdf.graph import freeze

    def publish(ds, triple):
        merged = ds.union_graph()
        merged.add(triple)
        return freeze(merged)
    '''
    assert "EF003" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# EF004 — bare stats read on a write path
# ---------------------------------------------------------------------------


EF004_SOURCE = '''
def record(target, triple):
    before = len(target)
    target.add(triple)
    return len(target) - before
'''


def test_ef004_len_straddle():
    diags = [d for d in lint(EF004_SOURCE) if d.rule == "EF004"]
    assert diags, "expected EF004"
    assert all(d.severity is Severity.WARNING for d in diags)
    assert "straddle" in diags[0].message


def test_ef004_suppressed():
    patched = dedent(EF004_SOURCE).replace(
        "before = len(target)",
        "before = len(target)  # ef: allow=EF004",
    ).replace(
        "return len(target) - before",
        "return len(target) - before  # ef: allow=EF004",
    )
    assert [d for d in lint(patched) if d.rule == "EF004"] == []


def test_ef004_read_only_len_is_clean():
    clean = '''
    def size(graph):
        return len(graph)
    '''
    assert "EF004" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# EF005 — internal index snapshot escape
# ---------------------------------------------------------------------------


EF005_SOURCE = '''
def leak(graph):
    return graph._spo
'''


def test_ef005_returned_index():
    diag = only(lint(EF005_SOURCE), "EF005")
    assert diag.severity is Severity.ERROR
    assert "shares mutable index state" in diag.message


def test_ef005_suppressed():
    assert suppressed(EF005_SOURCE, "EF005", "return graph._spo") == []


# ---------------------------------------------------------------------------
# EF006 — graph writes without a Graph-writes: contract
# ---------------------------------------------------------------------------


EF006_SOURCE = '''
def build(graph, triple):
    graph.add(triple)
'''


def test_ef006_missing_contract():
    diag = only(lint(EF006_SOURCE), "EF006")
    assert diag.severity is Severity.WARNING
    assert "Graph-writes" in diag.message


def test_ef006_suppressed():
    # the diagnostic anchors to the first writing function's def line
    assert suppressed(
        EF006_SOURCE, "EF006", "def build(graph, triple):"
    ) == []


def test_ef006_contract_satisfies():
    clean = '''
    """Builder.

    Graph-writes: the caller-supplied graph
    """

    def build(graph, triple):
        graph.add(triple)
    '''
    assert "EF006" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# EF007 — io/clock effects in an 'Effects: pure' module
# ---------------------------------------------------------------------------


EF007_SOURCE = '''
"""Pure helpers.

Effects: pure
"""

import time

def stamp():
    return time.time()
'''


def test_ef007_clock_in_pure_module():
    diag = only(lint(EF007_SOURCE), "EF007")
    assert diag.severity is Severity.ERROR
    assert "clock" in diag.message


def test_ef007_suppressed():
    assert suppressed(EF007_SOURCE, "EF007", "def stamp():") == []


# ---------------------------------------------------------------------------
# EF008 — (transitive) writes under 'Graph-writes: none'
# ---------------------------------------------------------------------------


EF008_SOURCE = '''
"""Reader module.

Graph-writes: none
"""

def sneaky(graph, triple):
    graph.add(triple)

def outer(graph, triple):
    sneaky(graph, triple)
'''


def test_ef008_direct_and_transitive():
    diags = [d for d in lint(EF008_SOURCE) if d.rule == "EF008"]
    assert len(diags) == 2  # sneaky directly, outer transitively
    assert all(d.severity is Severity.ERROR for d in diags)
    assert any("outer" in d.message for d in diags)


def test_ef008_suppressed():
    patched = dedent(EF008_SOURCE).replace(
        "def sneaky(graph, triple):",
        "def sneaky(graph, triple):  # ef: allow=EF008",
    ).replace(
        "def outer(graph, triple):",
        "def outer(graph, triple):  # ef: allow=EF008",
    )
    assert [d for d in lint(patched) if d.rule == "EF008"] == []


# ---------------------------------------------------------------------------
# EF009 — ignored remove_graph() result
# ---------------------------------------------------------------------------


EF009_SOURCE = '''
def drop(ds):
    ds.remove_graph("urn:x")
'''


def test_ef009_ignored_result():
    diag = only(lint(EF009_SOURCE), "EF009")
    assert diag.severity is Severity.WARNING
    assert "result ignored" in diag.message


def test_ef009_suppressed():
    assert suppressed(
        EF009_SOURCE, "EF009", 'ds.remove_graph("urn:x")'
    ) == []


def test_ef009_consumed_result_is_clean():
    clean = '''
    def drop(ds):
        existed = ds.remove_graph("urn:x")
        return existed
    '''
    assert "EF009" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# EF010 — inferred effects exceed the declared summary
# ---------------------------------------------------------------------------


EF010_SOURCE = '''
def annotate(graph, triple):
    """Record one annotation.

    Effects: graph-read
    """
    graph.add(triple)
'''


def test_ef010_undeclared_write():
    diag = only(lint(EF010_SOURCE), "EF010")
    assert diag.severity is Severity.WARNING
    assert "graph-write" in diag.message


def test_ef010_suppressed():
    assert suppressed(
        EF010_SOURCE, "EF010", "def annotate(graph, triple):"
    ) == []


def test_ef010_accurate_declaration_is_clean():
    clean = '''
    def annotate(graph, triple):
        """Record one annotation.

        Effects: graph-write
        """
        graph.add(triple)
    '''
    assert "EF010" not in rules_of(lint(clean))


# ---------------------------------------------------------------------------
# Interprocedural plumbing
# ---------------------------------------------------------------------------


def test_effects_propagate_through_call_chain():
    source = '''
    """Layered writers.

    Graph-writes: none
    """

    def bottom(graph, triple):
        graph.add(triple)

    def middle(graph, triple):
        bottom(graph, triple)

    def top(graph, triple):
        middle(graph, triple)
    '''
    diags = [d for d in lint(source) if d.rule == "EF008"]
    assert len(diags) == 3  # the fixpoint reaches the whole chain


def test_laziness_propagates_through_return_delegation():
    # the wrapper itself has no yield; laziness must flow through
    # ``return inner(...)`` for the producer-form EF002 to fire
    source = '''
    def _scan(db):
        for row in db.rows():
            yield row

    def scan(db):
        return _scan(db)

    def load(graph, db):
        graph.add_all(scan(db))
    '''
    diags = [d for d in lint(source) if d.rule == "EF002"]
    assert len(diags) == 1


def test_blanket_pragma_suppresses_any_rule():
    patched = dedent(EF001_ASSIGN).replace(
        "graph._spo[s] = {}", "graph._spo[s] = {}  # ef: allow"
    )
    assert rules_of(lint(patched)) == []


# ---------------------------------------------------------------------------
# The repo's own baseline
# ---------------------------------------------------------------------------


def test_repro_package_is_clean():
    package_root = Path(repro.__file__).resolve().parent
    diags = analyze_effects([package_root])
    assert diags == [], [d.render() for d in diags]
