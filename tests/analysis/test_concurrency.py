"""Concurrency analyzer tests — one golden (rule id + span) test per
CC rule on a crafted fixture, plus suppression/contract semantics and
the repo's own clean baseline (the PR 1 lint-test idiom)."""

from pathlib import Path
from textwrap import dedent

import repro
from repro.analysis import Severity, Span
from repro.analysis.concurrency import (
    ConcurrencyAnalyzer,
    analyze_paths,
)


def lint(source, name="fixture.py"):
    """Per-file rules plus the (single-file) lock-order graph."""
    analyzer = ConcurrencyAnalyzer()
    diags = analyzer.analyze_source(dedent(source), name)
    return diags + analyzer.order_graph_diagnostics()


def rules_of(diags):
    return [d.rule for d in diags]


def only(diags, rule):
    matching = [d for d in diags if d.rule == rule]
    assert len(matching) == 1, f"expected one {rule}, got {diags}"
    return matching[0]


# ---------------------------------------------------------------------------
# CC001 — guarded attribute accessed unguarded
# ---------------------------------------------------------------------------


CC001_SOURCE = dedent('''
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def peek(self, key):
            return self._items.get(key)
''')


def test_cc001_unguarded_read():
    diag = only(lint(CC001_SOURCE), "CC001")
    assert diag.severity is Severity.ERROR
    assert "_items" in diag.message
    assert "Box._lock" in diag.message
    assert "peek" in diag.message
    start = CC001_SOURCE.find("self._items.get")
    assert diag.span == Span(start, start + len("self._items"))


def test_cc001_silent_when_all_accesses_guarded():
    clean = CC001_SOURCE.replace(
        "        return self._items.get(key)",
        "        with self._lock:\n"
        "            return self._items.get(key)",
    )
    assert "CC001" not in rules_of(lint(clean))


def test_cc001_config_read_in_init_does_not_arm():
    # attributes only *read* under a lock (never written there) are
    # configuration, not shared mutable state
    source = '''
        import threading

        class Breaker:
            def __init__(self, threshold):
                self._lock = threading.Lock()
                self.threshold = threshold
                self._failures = 0

            def record(self):
                with self._lock:
                    self._failures += 1
                    return self._failures >= self.threshold

            def describe(self):
                return f"threshold={self.threshold}"
    '''
    assert "CC001" not in rules_of(lint(source))


def test_cc001_unguarded_write_flagged_too():
    source = '''
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._n = 0

            def safe(self):
                with self._lock:
                    self._n += 1

            def racy(self):
                self._n += 1
    '''
    diag = only(lint(source), "CC001")
    assert "written" in diag.message


# ---------------------------------------------------------------------------
# CC002 — inconsistent lock order
# ---------------------------------------------------------------------------


CC002_SOURCE = dedent('''
    import threading

    class Transfer:
        def __init__(self):
            self._accounts = threading.Lock()
            self._audit = threading.Lock()

        def debit(self):
            with self._accounts:
                with self._audit:
                    pass

        def log(self):
            with self._audit:
                with self._accounts:
                    pass
''')


def test_cc002_lock_order_cycle():
    diags = [d for d in lint(CC002_SOURCE) if d.rule == "CC002"]
    assert len(diags) == 2  # one per conflicting edge
    assert all(d.severity is Severity.ERROR for d in diags)
    assert any("Transfer._audit" in d.message for d in diags)
    start = CC002_SOURCE.find("self._audit:", CC002_SOURCE.find("debit"))
    assert diags[0].span == Span(start, start + len("self._audit"))


def test_cc002_consistent_order_is_silent():
    consistent = CC002_SOURCE.replace(
        "    def log(self):\n"
        "        with self._audit:\n"
        "            with self._accounts:",
        "    def log(self):\n"
        "        with self._accounts:\n"
        "            with self._audit:",
    )
    assert consistent != CC002_SOURCE
    assert "CC002" not in rules_of(lint(consistent))


def test_cc002_cross_file_cycle():
    # each file is order-consistent on its own; the cycle only exists
    # in the union of their edges
    file_a = '''
        import threading
        from app import locks

        def forward():
            with locks.A:
                with locks.B:
                    pass
    '''
    file_b = '''
        import threading
        from app import locks

        def backward():
            with locks.B:
                with locks.A:
                    pass
    '''
    # module-level lock identities must match across files, so craft
    # them as module locks of one shared module name
    shared = '''
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def forward():
            with A:
                with B:
                    pass
    '''
    reverse = '''
        import threading

        A = threading.Lock()
        B = threading.Lock()

        def backward():
            with B:
                with A:
                    pass
    '''
    del file_a, file_b
    analyzer = ConcurrencyAnalyzer()
    first = analyzer.analyze_source(dedent(shared), "locks.py")
    second = analyzer.analyze_source(dedent(reverse), "locks.py")
    assert first == [] and second == []
    cycle = analyzer.order_graph_diagnostics()
    assert {d.rule for d in cycle} == {"CC002"}
    assert len(cycle) == 2


# ---------------------------------------------------------------------------
# CC003 — blocking work under a lock
# ---------------------------------------------------------------------------


def test_cc003_sleep_under_lock():
    source = '''
        import threading
        import time

        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def poll(self):
                with self._lock:
                    time.sleep(0.1)
    '''
    diag = only(lint(source), "CC003")
    assert diag.severity is Severity.ERROR
    assert "time.sleep" in diag.message


def test_cc003_injected_clock_under_lock():
    source = '''
        import threading

        class Cache:
            def __init__(self, clock):
                self._lock = threading.Lock()
                self._clock = clock

            def now(self):
                with self._lock:
                    return self._clock()
    '''
    diag = only(lint(source), "CC003")
    assert "_clock" in diag.message
    assert "injected" in diag.message


def test_cc003_future_result_and_open_under_lock():
    source = '''
        import threading

        class Collector:
            def __init__(self):
                self._lock = threading.Lock()

            def wait_for(self, future, path):
                with self._lock:
                    value = future.result()
                    with open(path) as handle:
                        return value, handle.read()
    '''
    diags = [d for d in lint(source) if d.rule == "CC003"]
    assert len(diags) == 2
    assert any("result()" in d.message for d in diags)
    assert any("open()" in d.message for d in diags)


def test_cc003_clock_sampled_before_lock_is_silent():
    source = '''
        import threading

        class Cache:
            def __init__(self, clock):
                self._lock = threading.Lock()
                self._clock = clock

            def now(self):
                now = self._clock()
                with self._lock:
                    return now
    '''
    assert "CC003" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC004 — executor closure captures mutated local
# ---------------------------------------------------------------------------


def test_cc004_lambda_captures_mutated_local():
    source = '''
        from concurrent.futures import ThreadPoolExecutor

        def fan_out(items):
            results = []
            with ThreadPoolExecutor() as pool:
                for item in items:
                    pool.submit(lambda: results.append(item))
                results = sorted(results)
            return results
    '''
    diag = only(lint(source), "CC004")
    assert diag.severity is Severity.WARNING
    assert "results" in diag.message


def test_cc004_argument_passing_is_silent():
    source = '''
        from concurrent.futures import ThreadPoolExecutor

        def fan_out(items, handle):
            with ThreadPoolExecutor() as pool:
                for item in items:
                    pool.submit(handle, item)
    '''
    assert "CC004" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC005 — per-call lock
# ---------------------------------------------------------------------------


def test_cc005_lock_created_per_call():
    source = '''
        import threading

        def guard(data):
            lock = threading.Lock()
            with lock:
                data.append(1)
    '''
    diag = only(lint(source), "CC005")
    assert diag.severity is Severity.ERROR
    start = dedent(source).find("threading.Lock()")
    assert diag.span == Span(start, start + len("threading.Lock()"))


def test_cc005_init_and_module_level_are_silent():
    source = '''
        import threading

        GLOBAL = threading.Lock()

        class Holder:
            def __init__(self):
                self._lock = threading.RLock()
    '''
    assert "CC005" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC006 — manual acquire without try/finally
# ---------------------------------------------------------------------------


def test_cc006_manual_acquire_unprotected():
    source = '''
        import threading

        _lock = threading.Lock()

        def work():
            _lock.acquire()
            step()
            _lock.release()
    '''
    diag = only(lint(source), "CC006")
    assert diag.severity is Severity.WARNING


def test_cc006_try_finally_is_silent():
    source = '''
        import threading

        _lock = threading.Lock()

        def work():
            _lock.acquire()
            try:
                step()
            finally:
                _lock.release()
    '''
    assert "CC006" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC007 — nested acquisition of a non-reentrant lock
# ---------------------------------------------------------------------------


def test_cc007_self_deadlock():
    source = '''
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
    '''
    diag = only(lint(source), "CC007")
    assert diag.severity is Severity.ERROR
    assert "Store._lock" in diag.message


def test_cc007_rlock_reentry_is_silent():
    source = '''
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
    '''
    assert "CC007" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC008 — class-level mutable attribute mutated via instances
# ---------------------------------------------------------------------------


def test_cc008_shared_class_attribute():
    source = '''
        import threading

        class Registry:
            entries = []

            def register(self, item):
                self.entries.append(item)
    '''
    diag = only(lint(source), "CC008")
    assert diag.severity is Severity.WARNING
    assert "entries" in diag.message


def test_cc008_instance_attribute_is_silent():
    source = '''
        import threading

        class Registry:
            def __init__(self):
                self.entries = []

            def register(self, item):
                self.entries.append(item)
    '''
    assert "CC008" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC009 — Condition.wait outside a while loop
# ---------------------------------------------------------------------------


def test_cc009_wait_without_predicate_loop():
    source = '''
        import threading

        class Queue:
            def __init__(self):
                self._cond = threading.Condition()
                self._items = []

            def take(self):
                with self._cond:
                    self._cond.wait()
                    return self._items.pop()
    '''
    diag = only(lint(source), "CC009")
    assert diag.severity is Severity.WARNING


def test_cc009_wait_in_while_is_silent():
    source = '''
        import threading

        class Queue:
            def __init__(self):
                self._cond = threading.Condition()
                self._items = []

            def take(self):
                with self._cond:
                    while not self._items:
                        self._cond.wait()
                    return self._items.pop()
    '''
    assert "CC009" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# CC010 — module-level mutable state mutated unguarded
# ---------------------------------------------------------------------------


def test_cc010_unguarded_global_mutation_in_threaded_module():
    source = '''
        import threading

        SEEN = {}

        def record(key, value):
            SEEN[key] = value
    '''
    diag = only(lint(source), "CC010")
    assert diag.severity is Severity.WARNING
    assert "SEEN" in diag.message


def test_cc010_guarded_mutation_is_silent():
    source = '''
        import threading

        SEEN = {}
        _LOCK = threading.Lock()

        def record(key, value):
            with _LOCK:
                SEEN[key] = value
    '''
    assert "CC010" not in rules_of(lint(source))


def test_cc010_unthreaded_module_is_silent():
    source = '''
        SEEN = {}

        def record(key, value):
            SEEN[key] = value
    '''
    assert "CC010" not in rules_of(lint(source))


# ---------------------------------------------------------------------------
# Suppressions: inline pragmas and module contracts
# ---------------------------------------------------------------------------


def test_inline_pragma_suppresses_named_rule():
    suppressed = CC001_SOURCE.replace(
        "        return self._items.get(key)",
        "        return self._items.get(key)  # cc: allow=CC001",
    )
    assert "CC001" not in rules_of(lint(suppressed))


def test_inline_pragma_other_rule_does_not_suppress():
    wrong = CC001_SOURCE.replace(
        "        return self._items.get(key)",
        "        return self._items.get(key)  # cc: allow=CC003",
    )
    assert "CC001" in rules_of(lint(wrong))


def test_bare_pragma_suppresses_everything_on_the_line():
    suppressed = CC001_SOURCE.replace(
        "        return self._items.get(key)",
        "        return self._items.get(key)  # cc: allow",
    )
    assert "CC001" not in rules_of(lint(suppressed))


def test_single_writer_contract_allows_unguarded_reads():
    contracted = (
        '"""Module under test.\n\nConcurrency: single-writer\n"""\n'
        + CC001_SOURCE
    )
    assert "CC001" not in rules_of(lint(contracted))


def test_single_writer_contract_still_flags_unguarded_writes():
    contracted = (
        '"""Module under test.\n\nConcurrency: single-writer\n"""\n'
        + CC001_SOURCE.replace(
            "        return self._items.get(key)",
            "        self._items[key] = None",
        )
    )
    diag = only(lint(contracted), "CC001")
    assert "written" in diag.message


def test_single_threaded_contract_disables_shared_state_rules():
    contracted = (
        '"""Module under test.\n\nConcurrency: single-threaded\n"""\n'
        + CC001_SOURCE
    )
    assert rules_of(lint(contracted)) == []


# ---------------------------------------------------------------------------
# The repo's own baseline is clean (tentpole acceptance criterion)
# ---------------------------------------------------------------------------


def test_repro_package_is_concurrency_clean():
    package = Path(repro.__file__).resolve().parent
    diags = analyze_paths([package])
    rendered = "\n".join(
        f"{d.rule} {d.source}: {d.message}" for d in diags
    )
    assert diags == [], rendered


def test_unreadable_path_reports_sp000():
    diags = analyze_paths([Path("/nonexistent/code.py")])
    assert rules_of(diags) == ["SP000"]


def test_syntax_error_reports_sp000():
    diags = lint("def broken(:\n    pass")
    assert rules_of(diags) == ["SP000"]
