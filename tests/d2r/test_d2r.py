"""D2R mapping and dump tests."""

import pytest

from repro.d2r import (
    D2RMapping,
    KeywordSplitMap,
    LinkMap,
    MappingError,
    PropertyMap,
    TableMap,
    UriPattern,
    dump_graph,
    dump_ntriples,
)
from repro.rdf import (
    DC,
    FOAF,
    Literal,
    RDF,
    SIOCT,
    TL_PID,
    TL_USER,
    URIRef,
    load_ntriples,
)
from repro.relational import Database

KEYWORD = URIRef("http://beta.teamlife.it/vocab#keyword")


@pytest.fixture
def gallery_db():
    db = Database("teamlife")
    db.execute(
        """CREATE TABLE users (
             user_id INTEGER PRIMARY KEY AUTOINCREMENT,
             user_name TEXT NOT NULL UNIQUE
           )"""
    )
    db.execute(
        """CREATE TABLE pictures (
             pid INTEGER PRIMARY KEY AUTOINCREMENT,
             owner_id INTEGER REFERENCES users(user_id),
             title TEXT,
             keywords TEXT,
             rating REAL
           )"""
    )
    db.execute("INSERT INTO users (user_name) VALUES ('oscar'), ('walter')")
    db.execute(
        "INSERT INTO pictures (owner_id, title, keywords, rating) VALUES "
        "(1, 'Mole by night', 'mole turin night', 4.5), "
        "(2, 'Colosseum', 'coliseum rome', 5.0), "
        "(2, NULL, NULL, NULL)"
    )
    return db


@pytest.fixture
def gallery_mapping():
    mapping = D2RMapping()
    mapping.add(
        TableMap(
            table="users",
            uri_pattern=UriPattern(str(TL_USER) + "{user_id}"),
            rdf_class=FOAF.Person,
            properties=[PropertyMap("user_name", FOAF.name)],
        )
    )
    mapping.add(
        TableMap(
            table="pictures",
            uri_pattern=UriPattern(str(TL_PID) + "{pid}"),
            rdf_class=SIOCT.MicroblogPost,
            properties=[
                PropertyMap("title", DC.title),
                PropertyMap("rating", URIRef("http://purl.org/stuff/rev#rating")),
            ],
            links=[LinkMap("owner_id", FOAF.maker, "users")],
            keyword_splits=[KeywordSplitMap("keywords", KEYWORD)],
        )
    )
    return mapping


class TestUriPattern:
    def test_expand(self):
        pattern = UriPattern("http://x/pics/{pid}")
        assert pattern.expand({"pid": 7}) == URIRef("http://x/pics/7")

    def test_columns(self):
        assert UriPattern("http://x/{a}/{b}").columns() == ["a", "b"]

    def test_escaping(self):
        pattern = UriPattern("http://x/u/{name}")
        uri = pattern.expand({"name": "walter goix"})
        assert uri == URIRef("http://x/u/walter%20goix")

    def test_unicode_escaping(self):
        uri = UriPattern("http://x/{n}").expand({"n": "città"})
        assert "%C3%A0" in str(uri)

    def test_missing_column(self):
        with pytest.raises(MappingError):
            UriPattern("http://x/{pid}").expand({"other": 1})

    def test_null_column(self):
        with pytest.raises(MappingError):
            UriPattern("http://x/{pid}").expand({"pid": None})


class TestDump:
    def test_rdf_type_emitted(self, gallery_db, gallery_mapping):
        g = dump_graph(gallery_db, gallery_mapping)
        assert (TL_PID["1"], RDF.type, SIOCT.MicroblogPost) in g
        assert (TL_USER["1"], RDF.type, FOAF.Person) in g

    def test_intra_table_properties(self, gallery_db, gallery_mapping):
        g = dump_graph(gallery_db, gallery_mapping)
        assert g.value(TL_PID["1"], DC.title) == Literal("Mole by night")
        rating = g.value(
            TL_PID["2"], URIRef("http://purl.org/stuff/rev#rating")
        )
        assert rating.value == 5.0

    def test_null_columns_skipped(self, gallery_db, gallery_mapping):
        g = dump_graph(gallery_db, gallery_mapping)
        assert g.value(TL_PID["3"], DC.title) is None
        # but the resource still exists with its type triple
        assert (TL_PID["3"], RDF.type, SIOCT.MicroblogPost) in g

    def test_cross_table_link(self, gallery_db, gallery_mapping):
        g = dump_graph(gallery_db, gallery_mapping)
        assert (TL_PID["1"], FOAF.maker, TL_USER["1"]) in g
        assert (TL_PID["2"], FOAF.maker, TL_USER["2"]) in g

    def test_keyword_splitting(self, gallery_db, gallery_mapping):
        g = dump_graph(gallery_db, gallery_mapping)
        keywords = {o.lexical for o in g.objects(TL_PID["1"], KEYWORD)}
        assert keywords == {"mole", "turin", "night"}

    def test_keyword_dedup(self, gallery_db, gallery_mapping):
        gallery_db.execute(
            "INSERT INTO pictures (owner_id, title, keywords) VALUES "
            "(1, 'dup', 'x x  x')"
        )
        g = dump_graph(gallery_db, gallery_mapping)
        keywords = list(g.objects(TL_PID["4"], KEYWORD))
        assert len(keywords) == 1

    def test_ntriples_output_loadable(self, gallery_db, gallery_mapping):
        text = dump_ntriples(gallery_db, gallery_mapping)
        g = load_ntriples(text)
        assert len(g) == len(dump_graph(gallery_db, gallery_mapping))

    def test_ntriples_deterministic(self, gallery_db, gallery_mapping):
        first = dump_ntriples(gallery_db, gallery_mapping)
        second = dump_ntriples(gallery_db, gallery_mapping)
        assert first == second

    def test_link_to_unmapped_table_rejected(self, gallery_db):
        mapping = D2RMapping()
        mapping.add(
            TableMap(
                table="pictures",
                uri_pattern=UriPattern(str(TL_PID) + "{pid}"),
                links=[LinkMap("owner_id", FOAF.maker, "users")],
            )
        )
        with pytest.raises(MappingError):
            dump_ntriples(gallery_db, mapping)

    def test_failed_dump_leaves_target_untouched(self, gallery_db):
        # the dump is materialized before the store is touched: a
        # MappingError raised after the first table already produced
        # triples must not leave the target half-populated (the EF002
        # regression — the old code fed the live generator to add_all)
        from repro.rdf import Graph

        mapping = D2RMapping()
        mapping.add(
            TableMap(
                table="users",
                uri_pattern=UriPattern(str(TL_USER) + "{user_id}"),
                rdf_class=FOAF.Person,
            )
        )
        mapping.add(
            TableMap(
                table="pictures",
                uri_pattern=UriPattern(str(TL_PID) + "{pid}"),
                links=[LinkMap("owner_id", FOAF.maker, "albums")],
            )
        )
        target = Graph()
        target.add((TL_USER["99"], RDF.type, FOAF.Person))
        with pytest.raises(MappingError):
            dump_graph(gallery_db, mapping, graph=target)
        assert len(target) == 1  # only the pre-existing triple

    def test_dangling_fk_skipped(self, gallery_mapping):
        db = Database()
        db.execute("CREATE TABLE users (user_id INTEGER PRIMARY KEY, "
                   "user_name TEXT)")
        db.execute("CREATE TABLE pictures (pid INTEGER PRIMARY KEY, "
                   "owner_id INTEGER, title TEXT, keywords TEXT, "
                   "rating REAL)")
        db.execute("INSERT INTO pictures (pid, owner_id) VALUES (1, 99)")
        g = dump_graph(db, gallery_mapping)
        assert list(g.objects(TL_PID["1"], FOAF.maker)) == []


class TestFromDict:
    def test_roundtrip_equivalent(self, gallery_db, gallery_mapping):
        spec = {
            "users": {
                "uri": str(TL_USER) + "{user_id}",
                "class": str(FOAF.Person),
                "properties": [
                    {"column": "user_name", "predicate": str(FOAF.name)},
                ],
            },
            "pictures": {
                "uri": str(TL_PID) + "{pid}",
                "class": str(SIOCT.MicroblogPost),
                "properties": [
                    {"column": "title", "predicate": str(DC.title)},
                    {"column": "rating",
                     "predicate": "http://purl.org/stuff/rev#rating"},
                ],
                "links": [
                    {"column": "owner_id", "predicate": str(FOAF.maker),
                     "table": "users"},
                ],
                "keywords": [
                    {"column": "keywords", "predicate": str(KEYWORD)},
                ],
            },
        }
        from_dict = D2RMapping.from_dict(spec)
        assert dump_ntriples(gallery_db, from_dict) == dump_ntriples(
            gallery_db, gallery_mapping
        )

    def test_missing_uri_rejected(self):
        with pytest.raises(MappingError):
            D2RMapping.from_dict({"t": {"class": "http://x/C"}})

    def test_duplicate_table_rejected(self):
        mapping = D2RMapping()
        table_map = TableMap("t", UriPattern("http://x/{id}"))
        mapping.add(table_map)
        with pytest.raises(MappingError):
            mapping.add(TableMap("t", UriPattern("http://y/{id}")))

    def test_lang_property(self, gallery_db):
        mapping = D2RMapping.from_dict(
            {
                "pictures": {
                    "uri": str(TL_PID) + "{pid}",
                    "properties": [
                        {"column": "title", "predicate": str(DC.title),
                         "lang": "it"},
                    ],
                }
            }
        )
        g = dump_graph(gallery_db, mapping)
        assert g.value(TL_PID["1"], DC.title).lang == "it"
