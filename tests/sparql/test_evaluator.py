"""SPARQL evaluator tests, including the paper's queries Q1–Q3 verbatim."""

import pytest

from repro.rdf import (
    COMM,
    FOAF,
    GEO,
    Graph,
    Literal,
    RDF,
    RDFS,
    REV,
    SIOCT,
    URIRef,
)
from repro.sparql import Evaluator, SparqlEvalError, SparqlSyntaxError, query
from repro.sparql.geo import Point

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


MOLE_POS = Point(7.6934, 45.0692)
NEAR_MOLE = Point(7.6930, 45.0690)
FAR_AWAY = Point(7.6500, 45.0300)


@pytest.fixture
def turin_graph():
    """The paper's running scenario: UGC around the Mole Antonelliana."""
    g = Graph()
    # The monument (DBpedia-style resource)
    mole = ex("Mole_Antonelliana")
    g.add((mole, RDFS.label, Literal("Mole Antonelliana", lang="it")))
    g.add((mole, GEO.geometry, MOLE_POS.to_literal()))
    # Users
    oscar, walter, carmen = ex("u/oscar"), ex("u/walter"), ex("u/carmen")
    g.add((oscar, FOAF.name, Literal("oscar")))
    g.add((walter, FOAF.name, Literal("walter")))
    g.add((carmen, FOAF.name, Literal("carmen")))
    g.add((walter, FOAF.knows, oscar))
    # carmen does NOT know oscar
    # Content near the Mole by walter (friend of oscar)
    pic1 = ex("pic/1")
    g.add((pic1, RDF.type, SIOCT.MicroblogPost))
    g.add((pic1, GEO.geometry, NEAR_MOLE.to_literal()))
    g.add((pic1, COMM["image-data"], Literal("http://cdn/pic1.jpg")))
    g.add((pic1, FOAF.maker, walter))
    g.add((pic1, REV.rating, Literal(5)))
    # Content near the Mole by carmen (not a friend)
    pic2 = ex("pic/2")
    g.add((pic2, RDF.type, SIOCT.MicroblogPost))
    g.add((pic2, GEO.geometry, NEAR_MOLE.to_literal()))
    g.add((pic2, COMM["image-data"], Literal("http://cdn/pic2.jpg")))
    g.add((pic2, FOAF.maker, carmen))
    g.add((pic2, REV.rating, Literal(3)))
    # Content far away by walter
    pic3 = ex("pic/3")
    g.add((pic3, RDF.type, SIOCT.MicroblogPost))
    g.add((pic3, GEO.geometry, FAR_AWAY.to_literal()))
    g.add((pic3, COMM["image-data"], Literal("http://cdn/pic3.jpg")))
    g.add((pic3, FOAF.maker, walter))
    g.add((pic3, REV.rating, Literal(4)))
    # A second walter picture near the Mole, lower rating
    pic4 = ex("pic/4")
    g.add((pic4, RDF.type, SIOCT.MicroblogPost))
    g.add((pic4, GEO.geometry, NEAR_MOLE.to_literal()))
    g.add((pic4, COMM["image-data"], Literal("http://cdn/pic4.jpg")))
    g.add((pic4, FOAF.maker, walter))
    g.add((pic4, REV.rating, Literal(2)))
    return g


@pytest.fixture(scope="module")
def turin_workload_graph():
    """A generated Turin workload union graph (optimizer regression)."""
    from repro.platform import Platform
    from repro.workloads import (
        WorkloadConfig,
        generate_workload,
        populate_platform,
    )

    platform = Platform()
    workload = generate_workload(WorkloadConfig(
        n_users=10, n_contents=100, cities=("Turin",), seed=42
    ))
    populate_platform(platform, workload)
    platform.semanticize()
    return platform.union_graph()


class TestBasicSelect:
    def test_single_pattern(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?n WHERE { <http://example.org/u/oscar> "
            "<http://xmlns.com/foaf/0.1/name> ?n }",
        )
        assert [r["n"].lexical for r in result] == ["oscar"]

    def test_join_two_patterns(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?pic WHERE {
                 ?pic foaf:maker ?u .
                 ?u foaf:name "walter" .
               }""",
        )
        assert len(result) == 3

    def test_select_star(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT * WHERE { ?u foaf:name "oscar" }',
        )
        assert result.variables == ["u"]
        assert result.first("u") == ex("u/oscar")

    def test_a_shorthand(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?r WHERE { ?r a sioct:MicroblogPost }",
        )
        assert len(result) == 4

    def test_no_match(self, turin_graph):
        result = query(
            turin_graph, 'SELECT ?u WHERE { ?u foaf:name "nobody" }'
        )
        assert len(result) == 0
        assert not result

    def test_shared_variable_join_on_object(self, turin_graph):
        # pictures sharing the same geometry
        result = query(
            turin_graph,
            """SELECT DISTINCT ?a ?b WHERE {
                 ?a geo:geometry ?g . ?b geo:geometry ?g .
                 FILTER (?a != ?b) .
                 ?a a sioct:MicroblogPost . ?b a sioct:MicroblogPost .
               }""",
        )
        # pic1, pic2, pic4 pairwise = 6 ordered pairs
        assert len(result) == 6

    def test_lang_literal_match(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?m WHERE { ?m rdfs:label "Mole Antonelliana"@it }',
        )
        assert result.first("m") == ex("Mole_Antonelliana")

    def test_lang_literal_mismatch(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?m WHERE { ?m rdfs:label "Mole Antonelliana"@en }',
        )
        assert len(result) == 0

    def test_distinct(self, turin_graph):
        no_distinct = query(
            turin_graph,
            "SELECT ?g WHERE { ?p a sioct:MicroblogPost . "
            "?p geo:geometry ?g }",
        )
        distinct = query(
            turin_graph,
            "SELECT DISTINCT ?g WHERE { ?p a sioct:MicroblogPost . "
            "?p geo:geometry ?g }",
        )
        assert len(no_distinct) == 4
        assert len(distinct) == 2

    def test_limit_offset(self, turin_graph):
        all_rows = query(
            turin_graph,
            "SELECT ?p WHERE { ?p a sioct:MicroblogPost } ORDER BY ?p",
        )
        page = query(
            turin_graph,
            "SELECT ?p WHERE { ?p a sioct:MicroblogPost } "
            "ORDER BY ?p LIMIT 2 OFFSET 1",
        )
        assert [r["p"] for r in page] == [r["p"] for r in all_rows][1:3]

    def test_order_by_desc_rating(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p ?r WHERE { ?p rev:rating ?r } ORDER BY DESC(?r)",
        )
        ratings = [r["r"].value for r in result]
        assert ratings == sorted(ratings, reverse=True)

    def test_order_by_ascending_default(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?r WHERE { ?p rev:rating ?r } ORDER BY ?r",
        )
        ratings = [r["r"].value for r in result]
        assert ratings == sorted(ratings)


class TestFilters:
    def test_numeric_comparison(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p WHERE { ?p rev:rating ?r . FILTER(?r >= 4) }",
        )
        assert {str(r["p"]) for r in result} == {EX + "pic/1", EX + "pic/3"}

    def test_inequality(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?u WHERE { ?u foaf:name ?n . FILTER(?n != "oscar") }',
        )
        assert len(result) == 2

    def test_regex(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?u WHERE { ?u foaf:name ?n . FILTER regex(?n, "^wa") }',
        )
        assert result.first("u") == ex("u/walter")

    def test_regex_case_insensitive_flag(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?u WHERE { ?u foaf:name ?n . '
            'FILTER regex(?n, "OSCAR", "i") }',
        )
        assert result.first("u") == ex("u/oscar")

    def test_langmatches(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?l WHERE { ?m rdfs:label ?l . "
            "FILTER langMatches(lang(?l), 'it') }",
        )
        assert len(result) == 1

    def test_in_operator(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?u WHERE { ?u foaf:name ?n . '
            'FILTER (?n IN ("oscar", "carmen")) }',
        )
        assert len(result) == 2

    def test_not_in_operator(self, turin_graph):
        result = query(
            turin_graph,
            'SELECT ?u WHERE { ?u foaf:name ?n . '
            'FILTER (?n NOT IN ("oscar", "carmen")) }',
        )
        assert result.first("u") == ex("u/walter")

    def test_boolean_connectives(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p WHERE { ?p rev:rating ?r . "
            "FILTER(?r > 2 && ?r < 5) }",
        )
        assert len(result) == 2  # ratings 3 and 4

    def test_or_connective(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p WHERE { ?p rev:rating ?r . "
            "FILTER(?r = 2 || ?r = 5) }",
        )
        assert len(result) == 2

    def test_negation(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p WHERE { ?p rev:rating ?r . FILTER(!(?r = 5)) }",
        )
        assert len(result) == 3

    def test_arithmetic_in_filter(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?p WHERE { ?p rev:rating ?r . FILTER(?r * 2 >= 8) }",
        )
        assert len(result) == 2

    def test_type_error_rejects_solution(self, turin_graph):
        # comparing a name (string) with a number errors -> row dropped
        result = query(
            turin_graph,
            "SELECT ?u WHERE { ?u foaf:name ?n . FILTER(?n > 3) }",
        )
        assert len(result) == 0

    def test_unbound_variable_in_filter_rejects(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT ?u WHERE { ?u foaf:name ?n . FILTER(?missing = 1) }",
        )
        assert len(result) == 0

    def test_bound_function(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p WHERE {
                 ?p a sioct:MicroblogPost .
                 OPTIONAL { ?p rev:rating ?r . FILTER(?r > 10) }
                 FILTER (!bound(?r))
               }""",
        )
        assert len(result) == 4

    def test_exists(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?u WHERE {
                 ?u foaf:name ?n .
                 FILTER EXISTS { ?u foaf:knows ?other }
               }""",
        )
        assert result.first("u") == ex("u/walter")

    def test_not_exists(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?u WHERE {
                 ?u foaf:name ?n .
                 FILTER NOT EXISTS { ?u foaf:knows ?other }
               }""",
        )
        assert len(result) == 2

    def test_filter_position_independent(self, turin_graph):
        # FILTER textually before the pattern it constrains still applies
        result = query(
            turin_graph,
            "SELECT ?p WHERE { FILTER(?r >= 4) ?p rev:rating ?r . }",
        )
        assert len(result) == 2


class TestOptionalUnionValues:
    def test_optional_binds_when_present(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?u ?friend WHERE {
                 ?u foaf:name ?n .
                 OPTIONAL { ?u foaf:knows ?friend }
               }""",
        )
        by_user = {str(r["u"]): r.get(
            next((k for k in r if str(k) == "friend"), None))
            for r in result}
        assert by_user[EX + "u/walter"] == ex("u/oscar")
        assert by_user[EX + "u/carmen"] is None

    def test_union(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?x WHERE {
                 { ?x foaf:name "oscar" } UNION { ?x foaf:name "carmen" }
               }""",
        )
        assert {str(r["x"]) for r in result} == {
            EX + "u/oscar", EX + "u/carmen",
        }

    def test_three_way_union(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?x WHERE {
                 { ?x foaf:name "oscar" } UNION { ?x foaf:name "carmen" }
                 UNION { ?x foaf:name "walter" }
               }""",
        )
        assert len(result) == 3

    def test_values_single_var(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p ?r WHERE {
                 VALUES ?r { 5 3 }
                 ?p rev:rating ?r .
               }""",
        )
        assert len(result) == 2

    def test_values_multi_var_with_undef(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?n ?r WHERE {
                 VALUES (?n ?r) { ("walter" UNDEF) }
                 ?u foaf:name ?n .
                 ?p foaf:maker ?u . ?p rev:rating ?r .
               }""",
        )
        assert len(result) == 3

    def test_bind(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p ?double WHERE {
                 ?p rev:rating ?r .
                 BIND(?r * 2 AS ?double)
               } ORDER BY DESC(?double)""",
        )
        assert result.first("double").value == 10

    def test_nested_groups(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p WHERE {
                 { { ?p rev:rating ?r . FILTER(?r = 5) } }
               }""",
        )
        assert len(result) == 1


class TestSubSelect:
    def test_subselect_with_limit(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p ?r WHERE {
                 { SELECT ?p ?r WHERE { ?p rev:rating ?r }
                   ORDER BY DESC(?r) LIMIT 2 }
               }""",
        )
        assert sorted(r["r"].value for r in result) == [4, 5]

    def test_subselect_joined_with_outer(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?p ?link WHERE {
                 { SELECT ?p WHERE { ?p rev:rating ?r . FILTER(?r >= 4) } }
                 ?p comm:image-data ?link .
               }""",
        )
        assert len(result) == 2

    def test_union_of_subselects(self, turin_graph):
        # the mashup query's structure: UNION branches of sub-SELECTs
        result = query(
            turin_graph,
            """SELECT DISTINCT ?x WHERE {
                 { SELECT ?x WHERE { ?x foaf:name "oscar" } LIMIT 5 }
                 UNION
                 { SELECT ?x WHERE { ?x rev:rating 5 } LIMIT 5 }
               }""",
        )
        assert len(result) == 2


class TestAggregates:
    def test_count_star(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT (COUNT(*) AS ?n) WHERE { ?p a sioct:MicroblogPost }",
        )
        assert result.first("n").value == 4

    def test_count_group_by(self, turin_graph):
        result = query(
            turin_graph,
            """SELECT ?u (COUNT(?p) AS ?n) WHERE {
                 ?p foaf:maker ?u .
               } GROUP BY ?u ORDER BY DESC(?n)""",
        )
        assert result.first("n").value == 3

    def test_avg(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT (AVG(?r) AS ?avg) WHERE { ?p rev:rating ?r }",
        )
        assert result.first("avg").value == pytest.approx(3.5)

    def test_min_max_sum(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT (MIN(?r) AS ?lo) (MAX(?r) AS ?hi) (SUM(?r) AS ?total) "
            "WHERE { ?p rev:rating ?r }",
        )
        row = result.first()
        values = {str(k): v.value for k, v in row.items()}
        assert values == {"lo": 2, "hi": 5, "total": 14}

    def test_count_distinct(self, turin_graph):
        result = query(
            turin_graph,
            "SELECT (COUNT(DISTINCT ?g) AS ?n) WHERE "
            "{ ?p a sioct:MicroblogPost . ?p geo:geometry ?g }",
        )
        assert result.first("n").value == 2


class TestOtherForms:
    def test_ask_true(self, turin_graph):
        assert query(turin_graph, 'ASK { ?u foaf:name "oscar" }') is True

    def test_ask_false(self, turin_graph):
        assert query(turin_graph, 'ASK { ?u foaf:name "zed" }') is False

    def test_construct(self, turin_graph):
        g = query(
            turin_graph,
            """CONSTRUCT { ?u <http://example.org/madeSomething> ?p }
               WHERE { ?p foaf:maker ?u }""",
        )
        assert len(g) == 4
        assert (ex("u/walter"), ex("madeSomething"), ex("pic/1")) in g

    def test_construct_skips_invalid_triples(self, turin_graph):
        g = query(
            turin_graph,
            """CONSTRUCT { ?n <http://example.org/p> ?u }
               WHERE { ?u foaf:name ?n }""",
        )
        assert len(g) == 0  # literal subjects dropped

    def test_describe(self, turin_graph):
        g = query(
            turin_graph, "DESCRIBE <http://example.org/Mole_Antonelliana>"
        )
        assert len(g) == 2

    def test_describe_with_where(self, turin_graph):
        g = query(
            turin_graph,
            'DESCRIBE ?u WHERE { ?u foaf:name "walter" }',
        )
        assert (ex("u/walter"), FOAF.knows, ex("u/oscar")) in g


class TestErrors:
    def test_syntax_error(self, turin_graph):
        with pytest.raises(SparqlSyntaxError):
            query(turin_graph, "SELECT WHERE { }")

    def test_trailing_garbage(self, turin_graph):
        with pytest.raises(SparqlSyntaxError):
            query(turin_graph, "ASK { ?s ?p ?o } garbage")

    def test_unknown_function(self, turin_graph):
        with pytest.raises(SparqlEvalError):
            query(
                turin_graph,
                "SELECT ?u WHERE { ?u foaf:name ?n . "
                "FILTER <http://no.such/fn>(?n) }",
            )

    def test_unknown_prefix(self, turin_graph):
        with pytest.raises(SparqlSyntaxError):
            query(turin_graph, "SELECT ?x WHERE { ?x nosuch:p ?y }")


# ---------------------------------------------------------------------------
# The paper's worked queries (section 2.3), verbatim modulo prefix hygiene.
# ---------------------------------------------------------------------------

Q1 = """
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX sioct: <http://rdfs.org/sioc/types#>
PREFIX comm: <http://comm.semanticweb.org/core.owl#>
PREFIX rev: <http://purl.org/stuff/rev#>
SELECT DISTINCT ?link WHERE {
  ?monument rdfs:label "Mole Antonelliana"@it .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  FILTER(bif:st_intersects(?location, ?sourceGEO, 0.3)) .
}
"""

Q2 = """
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?link WHERE {
  ?monument rdfs:label "Mole Antonelliana"@it .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  ?resource foaf:maker ?user .
  ?oscar foaf:name "oscar" .
  ?user foaf:knows ?oscar .
  FILTER( bif:st_intersects( ?location, ?sourceGEO, 0.3 ) ) .
}
"""

Q3 = """
SELECT DISTINCT ?link ?points WHERE {
  ?monument rdfs:label "Mole Antonelliana"@it .
  ?monument geo:geometry ?sourceGEO .
  ?resource geo:geometry ?location .
  ?resource a sioct:MicroblogPost .
  ?resource comm:image-data ?link .
  ?resource foaf:maker ?user .
  ?oscar foaf:name "oscar" .
  ?user foaf:knows ?oscar .
  ?resource rev:rating ?points .
  FILTER( bif:st_intersects( ?location, ?sourceGEO, 0.3 ) ) .
}
ORDER BY DESC(?points)
"""


class TestPaperQueries:
    def test_q1_geo_album(self, turin_graph):
        result = query(turin_graph, Q1)
        links = {r["link"].lexical for r in result}
        # pic1, pic2, pic4 are near the Mole; pic3 is too far
        assert links == {
            "http://cdn/pic1.jpg",
            "http://cdn/pic2.jpg",
            "http://cdn/pic4.jpg",
        }

    def test_q2_social_filter(self, turin_graph):
        result = query(turin_graph, Q2)
        links = {r["link"].lexical for r in result}
        # carmen's pic2 drops out: she does not know oscar
        assert links == {"http://cdn/pic1.jpg", "http://cdn/pic4.jpg"}

    def test_q3_rating_order(self, turin_graph):
        result = query(turin_graph, Q3)
        links = [r["link"].lexical for r in result]
        # walter's two near-Mole pictures ordered by rating desc (5 then 2)
        assert links == ["http://cdn/pic1.jpg", "http://cdn/pic4.jpg"]

    # -- optimizer regression pins -------------------------------------
    # The planner's rewritten execution must be indistinguishable from
    # the naive path: same rows, byte for byte, in a deterministic
    # serialization (ORDER BY sequences compared in order).

    @staticmethod
    def _rows(result):
        return sorted(
            tuple(sorted((str(k), str(v)) for k, v in row.items()))
            for row in result
        )

    def test_q1_optimized_matches_naive(self, turin_graph):
        optimized = query(turin_graph, Q1)
        naive = query(turin_graph, Q1, optimize=False)
        assert self._rows(optimized) == self._rows(naive)
        assert len(optimized) == 3

    def test_q2_optimized_matches_naive(self, turin_graph):
        optimized = query(turin_graph, Q2)
        naive = query(turin_graph, Q2, optimize=False)
        assert self._rows(optimized) == self._rows(naive)

    def test_q3_optimized_matches_naive(self, turin_graph):
        optimized = query(turin_graph, Q3)
        naive = query(turin_graph, Q3, optimize=False)
        # ORDER BY DESC(?points): the sequence itself must match
        assert (
            [r["link"].lexical for r in optimized]
            == [r["link"].lexical for r in naive]
        )
        assert self._rows(optimized) == self._rows(naive)

    def test_m1_optimized_matches_naive(self, turin_workload_graph):
        from repro.core.mashup import mashup_query

        text = mashup_query(pid=1)
        optimized = query(turin_workload_graph, text)
        naive = query(turin_workload_graph, text, optimize=False)
        assert self._rows(optimized) == self._rows(naive)
        assert len(optimized) > 0

    def test_q1_q3_on_workload(self, turin_workload_graph):
        for text in (Q1, Q2, Q3):
            optimized = query(turin_workload_graph, text)
            naive = query(turin_workload_graph, text, optimize=False)
            assert self._rows(optimized) == self._rows(naive)
