"""Geometry and geo-function tests."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sparql.geo import (
    EARTH_RADIUS_KM,
    GeometryError,
    Point,
    haversine_km,
    parse_point,
    st_distance,
    st_intersects,
    st_point,
    try_parse_point,
)

# Landmarks used throughout the paper's scenario (Turin).
MOLE = Point(7.6934, 45.0692)  # Mole Antonelliana
PORTA_NUOVA = Point(7.6778, 45.0625)  # ~1.4 km from the Mole
ROME = Point(12.4964, 41.9028)


class TestPoint:
    def test_wkt_roundtrip(self):
        assert parse_point(MOLE.wkt()) == MOLE

    def test_wkt_format(self):
        assert Point(7.5, 45.0).wkt() == "POINT(7.5 45)"

    def test_literal(self):
        lit = MOLE.to_literal()
        assert lit.lexical.startswith("POINT(")

    def test_case_insensitive_parse(self):
        assert parse_point("point(7.0 45.0)") == Point(7.0, 45.0)

    def test_whitespace_tolerant(self):
        assert parse_point("  POINT( 7.0   45.0 ) ") == Point(7.0, 45.0)

    def test_negative_coordinates(self):
        p = parse_point("POINT(-73.98 40.75)")
        assert p.longitude == -73.98

    def test_invalid_text(self):
        with pytest.raises(GeometryError):
            parse_point("LINESTRING(0 0, 1 1)")

    def test_longitude_range(self):
        with pytest.raises(GeometryError):
            Point(181.0, 0.0)

    def test_latitude_range(self):
        with pytest.raises(GeometryError):
            Point(0.0, -91.0)

    def test_try_parse_returns_none(self):
        assert try_parse_point("garbage") is None
        assert try_parse_point(MOLE.wkt()) == MOLE


class TestDistance:
    def test_zero_distance(self):
        assert haversine_km(MOLE, MOLE) == 0.0

    def test_symmetry(self):
        assert haversine_km(MOLE, ROME) == pytest.approx(
            haversine_km(ROME, MOLE)
        )

    def test_known_distance_turin_rome(self):
        # Turin–Rome is roughly 525 km great-circle
        assert haversine_km(MOLE, ROME) == pytest.approx(524, abs=15)

    def test_short_distance(self):
        # Mole → Porta Nuova is roughly 1.4 km
        assert haversine_km(MOLE, PORTA_NUOVA) == pytest.approx(1.4, abs=0.2)

    def test_st_distance_accepts_wkt_strings(self):
        assert st_distance(MOLE.wkt(), ROME.wkt()) > 500

    def test_antipodal_bounded_by_half_circumference(self):
        a = Point(0.0, 0.0)
        b = Point(180.0, 0.0)
        assert haversine_km(a, b) == pytest.approx(
            math.pi * EARTH_RADIUS_KM, rel=1e-6
        )


class TestStIntersects:
    def test_same_point_with_zero_precision(self):
        assert st_intersects(MOLE, MOLE, 0.0)

    def test_nearby_within_precision(self):
        # the paper's 0.3 precision: Porta Nuova is NOT within 0.3 km
        assert not st_intersects(MOLE, PORTA_NUOVA, 0.3)
        assert st_intersects(MOLE, PORTA_NUOVA, 2.0)

    def test_paper_radius_semantics(self):
        near = Point(7.6930, 45.0690)  # a few tens of meters from the Mole
        assert st_intersects(MOLE, near, 0.3)

    def test_wkt_string_inputs(self):
        assert st_intersects("POINT(7.0 45.0)", "POINT(7.0 45.0)", 0)

    def test_st_point_builds_literal(self):
        lit = st_point(7.6934, 45.0692)
        assert parse_point(lit) == MOLE


coords = st.tuples(
    st.floats(min_value=-180, max_value=180, allow_nan=False),
    st.floats(min_value=-90, max_value=90, allow_nan=False),
)


@given(coords)
def test_wkt_roundtrip_property(coord):
    p = Point(*coord)
    q = parse_point(p.wkt())
    assert abs(q.longitude - p.longitude) < 1e-5
    assert abs(q.latitude - p.latitude) < 1e-5


@given(coords, coords)
def test_distance_nonnegative_and_symmetric(c1, c2):
    a, b = Point(*c1), Point(*c2)
    d = haversine_km(a, b)
    assert d >= 0
    assert d == pytest.approx(haversine_km(b, a), abs=1e-9)


@given(coords, coords, coords)
def test_triangle_inequality(c1, c2, c3):
    a, b, c = Point(*c1), Point(*c2), Point(*c3)
    assert haversine_km(a, c) <= (
        haversine_km(a, b) + haversine_km(b, c) + 1e-6
    )
