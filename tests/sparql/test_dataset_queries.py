"""GRAPH-clause and named-graph dataset query tests."""

import pytest

from repro.rdf import Dataset, FOAF, Graph, Literal, RDF, URIRef
from repro.sparql import Evaluator, SparqlSyntaxError, parse_query

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


@pytest.fixture
def dataset():
    ds = Dataset()
    ds.default.add((ex("default_only"), FOAF.name, Literal("D")))
    g1 = ds.graph("http://graphs/one")
    g1.add((ex("alice"), FOAF.name, Literal("Alice")))
    g1.add((ex("alice"), RDF.type, FOAF.Person))
    g2 = ds.graph("http://graphs/two")
    g2.add((ex("bob"), FOAF.name, Literal("Bob")))
    return ds


class TestUnionDefault:
    def test_plain_bgp_sees_union(self, dataset):
        result = Evaluator(dataset).evaluate(
            "SELECT ?s WHERE { ?s foaf:name ?n }"
        )
        assert len(result) == 3  # default + both named graphs

    def test_plain_graph_still_works(self):
        g = Graph()
        g.add((ex("x"), FOAF.name, Literal("X")))
        result = Evaluator(g).evaluate(
            "SELECT ?s WHERE { ?s foaf:name ?n }"
        )
        assert len(result) == 1


class TestGraphClause:
    def test_graph_with_iri(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 GRAPH <http://graphs/one> { ?s foaf:name ?n }
               }"""
        )
        assert [r["s"] for r in result] == [ex("alice")]

    def test_graph_with_unknown_iri(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 GRAPH <http://graphs/none> { ?s foaf:name ?n }
               }"""
        )
        assert len(result) == 0

    def test_graph_variable_binds_identifier(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?g ?s WHERE {
                 GRAPH ?g { ?s foaf:name ?n }
               } ORDER BY ?g"""
        )
        pairs = [(str(r["g"]), str(r["s"])) for r in result]
        assert pairs == [
            ("http://graphs/one", EX + "alice"),
            ("http://graphs/two", EX + "bob"),
        ]

    def test_default_graph_triples_not_in_graph_clause(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 GRAPH ?g { ?s foaf:name ?n }
                 FILTER(?s = <http://example.org/default_only>)
               }"""
        )
        assert len(result) == 0

    def test_graph_joined_with_outer_pattern(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 ?s a foaf:Person .
                 GRAPH <http://graphs/one> { ?s foaf:name ?n }
               }"""
        )
        assert [r["s"] for r in result] == [ex("alice")]

    def test_pre_bound_graph_variable(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 VALUES ?g { <http://graphs/two> }
                 GRAPH ?g { ?s foaf:name ?n }
               }"""
        )
        assert [r["s"] for r in result] == [ex("bob")]

    def test_filter_inside_graph_scopes_to_that_graph(self, dataset):
        result = Evaluator(dataset).evaluate(
            """SELECT ?s WHERE {
                 GRAPH ?g {
                   ?s foaf:name ?n .
                   FILTER EXISTS { ?s a foaf:Person }
                 }
               }"""
        )
        assert [r["s"] for r in result] == [ex("alice")]

    def test_graph_on_plain_graph_evaluator_matches_nothing(self):
        g = Graph()
        g.add((ex("x"), FOAF.name, Literal("X")))
        result = Evaluator(g).evaluate(
            "SELECT ?s WHERE { GRAPH ?g { ?s foaf:name ?n } }"
        )
        assert len(result) == 0

    def test_literal_graph_target_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query(
                'SELECT ?s WHERE { GRAPH "lit" { ?s ?p ?o } }'
            )


class TestLodCorpusDataset:
    def test_named_graph_query_on_corpus(self):
        from repro.lod import build_lod_corpus

        ds = build_lod_corpus().as_dataset()
        result = Evaluator(ds).evaluate(
            """SELECT ?g (COUNT(*) AS ?n) WHERE {
                 GRAPH ?g { ?s ?p ?o }
               } GROUP BY ?g ORDER BY ?g"""
        )
        graphs = {str(r["g"]): r["n"].value for r in result}
        assert set(graphs) == {
            "http://dbpedia.org",
            "http://sws.geonames.org",
            "http://linkedgeodata.org",
        }
        assert all(count > 0 for count in graphs.values())
