"""Tokenizer tests."""

import pytest

from repro.sparql.errors import SparqlSyntaxError
from repro.sparql.tokenizer import tokenize, unquote_string


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop eof


def texts(text):
    return [t.text for t in tokenize(text)][:-1]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.kind == "keyword" and t.text == "SELECT"
                   for t in tokens[:-1])

    def test_variables(self):
        tokens = tokenize("?link $points")
        assert [t.text for t in tokens[:-1]] == ["link", "points"]
        assert all(t.kind == "var" for t in tokens[:-1])

    def test_iri(self):
        assert kinds("<http://example.org/a>") == ["iri"]

    def test_pname(self):
        assert kinds("foaf:name bif:st_intersects") == ["pname", "pname"]

    def test_prefix_declaration_pname(self):
        tokens = tokenize("PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>")
        assert tokens[0].text == "PREFIX"
        assert tokens[1].kind == "pname"
        assert tokens[1].text == "rdfs:"

    def test_string_with_lang(self):
        tokens = tokenize('"Mole Antonelliana"@it')
        assert tokens[0].kind == "string"
        assert tokens[1].kind == "langtag"
        assert tokens[1].text == "@it"

    def test_string_escapes(self):
        tokens = tokenize(r'"say \"hi\""')
        assert unquote_string(tokens[0].text) == r'say \"hi\"'

    def test_long_string(self):
        tokens = tokenize('"""multi\nline"""')
        assert tokens[0].kind == "string"
        assert unquote_string(tokens[0].text) == "multi\nline"

    def test_numbers(self):
        assert texts("0.3 42 1e6 -7") == ["0.3", "42", "1e6", "-7"]
        assert kinds("0.3 42") == ["number", "number"]

    def test_operators(self):
        assert texts("<= >= != && || = < >") == [
            "<=", ">=", "!=", "&&", "||", "=", "<", ">",
        ]

    def test_comment_skipped(self):
        assert kinds("?a # a comment\n?b") == ["var", "var"]

    def test_punct(self):
        assert kinds("{ } ( ) . ; ,") == ["punct"] * 7

    def test_a_keyword(self):
        tokens = tokenize("?x a foaf:Person")
        assert tokens[1].is_keyword("A")

    def test_typed_literal_tokens(self):
        assert kinds('"5"^^xsd:integer') == ["string", "dtype", "pname"]

    def test_bad_character(self):
        with pytest.raises(SparqlSyntaxError):
            tokenize("SELECT ~ WHERE")

    def test_offsets_recorded(self):
        tokens = tokenize("SELECT ?x")
        assert tokens[0].pos == 0
        assert tokens[1].pos == 7

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"
