"""Full-text matching and inverted index tests."""

from repro.rdf import FOAF, Graph, Literal, RDFS, URIRef
from repro.sparql.fulltext import (
    FullTextIndex,
    contains,
    tokenize_text,
)

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


class TestTokenizeText:
    def test_lowercases(self):
        assert tokenize_text("Mole Antonelliana") == ["mole", "antonelliana"]

    def test_punctuation_split(self):
        assert tokenize_text("Turin, Italy!") == ["turin", "italy"]

    def test_empty(self):
        assert tokenize_text("") == []

    def test_unicode_words(self):
        assert "cittá" in tokenize_text("la cittá vecchia")


class TestContains:
    def test_single_word(self):
        assert contains("The Mole Antonelliana in Turin", "mole")

    def test_case_insensitive(self):
        assert contains("TURIN by night", "turin")

    def test_implicit_and(self):
        assert contains("picture of Turin at night", "turin night")
        assert not contains("picture of Turin", "turin night")

    def test_explicit_and(self):
        assert contains("Turin by night", "turin AND night")

    def test_or(self):
        assert contains("a view of Rome", "turin OR rome")
        assert not contains("a view of Milan", "turin OR rome")

    def test_quoted_phrase(self):
        assert contains("the Mole Antonelliana tower", '"mole antonelliana"')
        assert not contains("Antonelliana built the Mole", '"mole antonelliana"')

    def test_empty_pattern(self):
        assert not contains("anything", "")

    def test_or_with_phrases(self):
        assert contains(
            "piazza castello today", '"piazza castello" OR "mole antonelliana"'
        )


class TestFullTextIndex:
    def _graph(self):
        g = Graph()
        g.add((ex("turin"), RDFS.label, Literal("Turin", lang="en")))
        g.add((ex("turin"), RDFS.label, Literal("Torino", lang="it")))
        g.add((ex("mole"), RDFS.label, Literal("Mole Antonelliana", lang="it")))
        g.add((ex("alice"), FOAF.name, Literal("Alice Turin")))
        g.add((ex("turin"), RDFS.comment, Literal("city in north Italy")))
        g.add((ex("rome"), RDFS.label, Literal("Rome")))
        # non-literal objects must be ignored
        g.add((ex("turin"), RDFS.seeAlso, ex("rome")))
        return g

    def test_search_single_token(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search("torino") == {ex("turin")}

    def test_search_intersection(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search("mole antonelliana") == {ex("mole")}

    def test_search_across_subjects(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search("turin") == {ex("turin"), ex("alice")}

    def test_search_miss(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search("paris") == set()

    def test_search_empty_query(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search("") == set()

    def test_predicate_restriction(self):
        idx = FullTextIndex.from_graph(
            self._graph(), predicates=[RDFS.label]
        )
        assert idx.search("alice") == set()
        assert idx.search("turin") == {ex("turin")}

    def test_prefix_search(self):
        idx = FullTextIndex.from_graph(self._graph())
        # "tur" prefix matches Turin label and Alice Turin
        assert ex("turin") in idx.search_prefix("tur")
        assert ex("alice") in idx.search_prefix("tur")

    def test_prefix_search_incremental_narrowing(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search_prefix("to") >= {ex("turin")}  # torino
        assert idx.search_prefix("tori") == {ex("turin")}

    def test_prefix_search_empty_prefix(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search_prefix("") == set()

    def test_add_invalidates_prefix_cache(self):
        idx = FullTextIndex.from_graph(self._graph())
        assert idx.search_prefix("zanzibar") == set()
        idx.add(ex("z"), RDFS.label, "Zanzibar")
        assert idx.search_prefix("zanzibar") == {ex("z")}

    def test_len_counts_tokens(self):
        idx = FullTextIndex()
        idx.add(ex("a"), RDFS.label, "one two two")
        assert len(idx) == 2

    def test_tokens_sorted(self):
        idx = FullTextIndex()
        idx.add(ex("a"), RDFS.label, "zebra apple")
        assert idx.tokens() == ["apple", "zebra"]
