"""Result container and serialization tests."""

import csv
import io
import json

import pytest

from repro.rdf import BNode, FOAF, Graph, Literal, URIRef
from repro.sparql import Evaluator
from repro.sparql.results import SelectResult
from repro.rdf.terms import Variable

EX = "http://example.org/"


@pytest.fixture
def result():
    g = Graph()
    g.add((URIRef(EX + "alice"), FOAF.name, Literal("Alice")))
    g.add((URIRef(EX + "alice"), FOAF.age, Literal(30)))
    g.add((URIRef(EX + "bob"), FOAF.name, Literal("Bob", lang="en")))
    g.add((URIRef(EX + "bob"), FOAF.knows, BNode("friend")))
    return Evaluator(g).evaluate(
        """SELECT ?s ?name ?age WHERE {
             ?s foaf:name ?name .
             OPTIONAL { ?s foaf:age ?age }
           } ORDER BY ?s"""
    )


class TestContainer:
    def test_len_iter_index(self, result):
        assert len(result) == 2
        assert list(result)[0] == result[0]

    def test_values_column(self, result):
        names = result.values("name")
        assert [n.lexical for n in names] == ["Alice", "Bob"]

    def test_values_with_unbound(self, result):
        ages = result.values("age")
        assert ages[0].value == 30
        assert ages[1] is None

    def test_first(self, result):
        assert result.first("name").lexical == "Alice"
        assert result.first() is result.rows[0]

    def test_first_on_empty(self):
        empty = SelectResult([Variable("x")], [])
        assert empty.first() is None
        assert not empty

    def test_to_dicts(self, result):
        dicts = result.to_dicts()
        assert dicts[0]["s"] == URIRef(EX + "alice")


class TestJson:
    def test_w3c_structure(self, result):
        doc = json.loads(result.to_json())
        assert doc["head"]["vars"] == ["s", "name", "age"]
        bindings = doc["results"]["bindings"]
        assert len(bindings) == 2

    def test_term_encodings(self, result):
        doc = json.loads(result.to_json())
        alice = doc["results"]["bindings"][0]
        assert alice["s"] == {"type": "uri", "value": EX + "alice"}
        assert alice["name"] == {"type": "literal", "value": "Alice"}
        assert alice["age"]["datatype"].endswith("integer")

    def test_lang_tag_encoding(self, result):
        doc = json.loads(result.to_json())
        bob = doc["results"]["bindings"][1]
        assert bob["name"]["xml:lang"] == "en"

    def test_unbound_omitted(self, result):
        doc = json.loads(result.to_json())
        assert "age" not in doc["results"]["bindings"][1]

    def test_bnode_encoding(self):
        g = Graph()
        g.add((URIRef(EX + "bob"), FOAF.knows, BNode("friend")))
        res = Evaluator(g).evaluate(
            "SELECT ?o WHERE { ?s foaf:knows ?o }"
        )
        doc = json.loads(res.to_json())
        assert doc["results"]["bindings"][0]["o"]["type"] == "bnode"


class TestCsv:
    def test_header_and_rows(self, result):
        reader = csv.reader(io.StringIO(result.to_csv()))
        rows = list(reader)
        assert rows[0] == ["s", "name", "age"]
        assert rows[1] == [EX + "alice", "Alice", "30"]

    def test_unbound_is_empty_cell(self, result):
        rows = list(csv.reader(io.StringIO(result.to_csv())))
        assert rows[2][2] == ""

    def test_quoting(self):
        res = SelectResult(
            [Variable("x")],
            [{Variable("x"): Literal('has, comma and "quote"')}],
        )
        rows = list(csv.reader(io.StringIO(res.to_csv())))
        assert rows[1] == ['has, comma and "quote"']


class TestTable:
    def test_alignment(self, result):
        table = result.to_table()
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(line) for line in lines)) == 1

    def test_truncation(self):
        res = SelectResult(
            [Variable("x")], [{Variable("x"): Literal("y" * 100)}]
        )
        table = res.to_table(max_width=10)
        assert "…" in table

    def test_repr(self, result):
        assert "rows=2" in repr(result)
