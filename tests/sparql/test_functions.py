"""Unit tests for SPARQL expression semantics and builtin functions."""

import pytest

from repro.rdf import Literal, URIRef
from repro.rdf.terms import (
    BNode,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
)
from repro.sparql.errors import ExpressionError
from repro.sparql.functions import (
    FUNCTIONS,
    arithmetic,
    boolean,
    compare,
    ebv,
    equals,
)


def f(name, *args):
    return FUNCTIONS[name](list(args))


class TestEbv:
    def test_booleans(self):
        assert ebv(Literal(True)) is True
        assert ebv(Literal(False)) is False

    def test_numbers(self):
        assert ebv(Literal(1)) is True
        assert ebv(Literal(0)) is False
        assert ebv(Literal(0.0)) is False

    def test_strings(self):
        assert ebv(Literal("x")) is True
        assert ebv(Literal("")) is False

    def test_malformed_numeric_is_false(self):
        assert ebv(Literal("abc", datatype=XSD_INTEGER)) is False

    def test_uri_has_no_ebv(self):
        with pytest.raises(ExpressionError):
            ebv(URIRef("http://x"))


class TestEqualsCompare:
    def test_numeric_cross_type_equality(self):
        assert equals(Literal(3), Literal(3.0))
        assert equals(Literal("3", datatype=XSD_INTEGER),
                      Literal("3.0", datatype=XSD_DOUBLE))

    def test_plain_vs_xsd_string(self):
        assert equals(Literal("a"), Literal("a", datatype=XSD_STRING))

    def test_lang_matters(self):
        assert not equals(Literal("a", lang="en"), Literal("a"))

    def test_numeric_ordering(self):
        assert compare("<", Literal(2), Literal(10))
        assert compare(">=", Literal(2.5), Literal(2.5))

    def test_string_ordering(self):
        assert compare("<", Literal("abc"), Literal("abd"))

    def test_incomparable_raises(self):
        with pytest.raises(ExpressionError):
            compare("<", Literal("a"), Literal(3))

    def test_uri_equality(self):
        assert compare("=", URIRef("http://x"), URIRef("http://x"))
        assert compare("!=", URIRef("http://x"), URIRef("http://y"))

    def test_uri_ordering_raises(self):
        with pytest.raises(ExpressionError):
            compare("<", URIRef("http://a"), URIRef("http://b"))


class TestArithmetic:
    def test_integer_preserved(self):
        assert arithmetic("+", Literal(2), Literal(3)) == Literal(5)
        assert arithmetic("*", Literal(2), Literal(3)).value == 6

    def test_division_always_possible(self):
        assert arithmetic("/", Literal(7), Literal(2)).value == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExpressionError):
            arithmetic("/", Literal(1), Literal(0))

    def test_non_numeric(self):
        with pytest.raises(ExpressionError):
            arithmetic("+", Literal("a"), Literal(1))


class TestStringFunctions:
    def test_strlen(self):
        assert f("STRLEN", Literal("ciao")).value == 4

    def test_substr_one_based(self):
        assert f("SUBSTR", Literal("torino"), Literal(2)).lexical == \
            "orino"
        assert f("SUBSTR", Literal("torino"), Literal(1),
                 Literal(3)).lexical == "tor"

    def test_case_functions(self):
        assert f("UCASE", Literal("mole")).lexical == "MOLE"
        assert f("LCASE", Literal("MOLE")).lexical == "mole"

    def test_concat(self):
        assert f("CONCAT", Literal("a"), Literal("b"),
                 Literal("c")).lexical == "abc"

    def test_replace(self):
        assert f("REPLACE", Literal("coliseum"), Literal("iseum"),
                 Literal("osseum")).lexical == "colosseum"

    def test_replace_case_insensitive(self):
        assert f("REPLACE", Literal("ABC"), Literal("b"),
                 Literal("-"), Literal("i")).lexical == "A-C"

    def test_strbefore_strafter(self):
        assert f("STRBEFORE", Literal("a=b"), Literal("=")).lexical == "a"
        assert f("STRAFTER", Literal("a=b"), Literal("=")).lexical == "b"
        assert f("STRBEFORE", Literal("ab"), Literal("=")).lexical == ""

    def test_contains_strstarts_strends(self):
        assert ebv(f("CONTAINS", Literal("mole antonelliana"),
                     Literal("anton")))
        assert ebv(f("STRSTARTS", Literal("mole"), Literal("mo")))
        assert ebv(f("STRENDS", Literal("mole"), Literal("le")))

    def test_str_of_uri(self):
        assert f("STR", URIRef("http://x/a")).lexical == "http://x/a"

    def test_strlang_strdt(self):
        lit = f("STRLANG", Literal("ciao"), Literal("it"))
        assert lit.lang == "it"
        typed = f("STRDT", Literal("5"), URIRef(XSD_INTEGER))
        assert typed.value == 5

    def test_strdt_requires_iri(self):
        with pytest.raises(ExpressionError):
            f("STRDT", Literal("5"), Literal("not-an-iri"))


class TestNumericFunctions:
    def test_abs(self):
        assert f("ABS", Literal(-4)).value == 4

    def test_ceil_floor(self):
        assert f("CEIL", Literal(1.2)).value == 2
        assert f("FLOOR", Literal(1.8)).value == 1

    def test_round_half_up(self):
        assert f("ROUND", Literal(2.5)).value == 3
        assert f("ROUND", Literal(-2.5)).value == -2


class TestTermFunctions:
    def test_lang(self):
        assert f("LANG", Literal("x", lang="IT")).lexical == "it"
        assert f("LANG", Literal("x")).lexical == ""

    def test_langmatches_star(self):
        assert ebv(f("LANGMATCHES", Literal("it"), Literal("*")))
        assert not ebv(f("LANGMATCHES", Literal(""), Literal("*")))

    def test_langmatches_subtag(self):
        assert ebv(f("LANGMATCHES", Literal("en-GB"), Literal("en")))
        assert not ebv(f("LANGMATCHES", Literal("en"), Literal("it")))

    def test_datatype(self):
        assert f("DATATYPE", Literal(5)) == URIRef(XSD_INTEGER)
        assert str(f("DATATYPE", Literal("x"))).endswith("string")
        assert str(f("DATATYPE", Literal("x", lang="en"))).endswith(
            "langString"
        )

    def test_type_checks(self):
        assert ebv(f("ISIRI", URIRef("http://x")))
        assert ebv(f("ISBLANK", BNode("b")))
        assert ebv(f("ISLITERAL", Literal("x")))
        assert ebv(f("ISNUMERIC", Literal(3)))
        assert not ebv(f("ISNUMERIC", Literal("3")))

    def test_sameterm_strict(self):
        assert not ebv(f("SAMETERM", Literal(3), Literal(3.0)))
        assert ebv(f("SAMETERM", Literal(3), Literal(3)))

    def test_iri_constructor(self):
        assert f("IRI", Literal("http://x/a")) == URIRef("http://x/a")


class TestCasts:
    def test_integer_cast(self):
        assert FUNCTIONS[XSD_INTEGER]([Literal("42 ")]).value == 42
        assert FUNCTIONS[XSD_INTEGER]([Literal("4.9")]).value == 4

    def test_double_cast(self):
        assert FUNCTIONS[XSD_DOUBLE]([Literal("1.5")]).value == 1.5

    def test_boolean_cast(self):
        assert FUNCTIONS[XSD_BOOLEAN]([Literal("1")]).value is True
        assert FUNCTIONS[XSD_BOOLEAN]([Literal("false")]).value is False

    def test_failed_cast_raises(self):
        with pytest.raises(ExpressionError):
            FUNCTIONS[XSD_INTEGER]([Literal("abc")])
        with pytest.raises(ExpressionError):
            FUNCTIONS[XSD_BOOLEAN]([Literal("maybe")])

    def test_cast_of_uri_raises(self):
        with pytest.raises(ExpressionError):
            FUNCTIONS[XSD_STRING]([URIRef("http://x")])


class TestRegex:
    def test_basic(self):
        assert ebv(f("REGEX", Literal("turin"), Literal("^tu")))

    def test_flags(self):
        assert ebv(f("REGEX", Literal("TURIN"), Literal("^tu"),
                     Literal("i")))

    def test_bad_pattern(self):
        with pytest.raises(ExpressionError):
            f("REGEX", Literal("x"), Literal("("))

    def test_requires_string_literal(self):
        with pytest.raises(ExpressionError):
            f("REGEX", Literal(5), Literal("5"))


class TestGeoBifs:
    def test_st_distance(self):
        distance = f(
            "bif:st_distance",
            Literal("POINT(7.6869 45.0703)"),
            Literal("POINT(12.4964 41.9028)"),
        )
        assert 500 < distance.value < 550

    def test_st_intersects_arity(self):
        with pytest.raises(ExpressionError):
            f("bif:st_intersects", Literal("POINT(0 0)"))

    def test_st_intersects_bad_geometry(self):
        with pytest.raises(ExpressionError):
            f("bif:st_intersects", Literal("POINT(0 0)"),
              Literal("nonsense"), Literal(1))

    def test_st_point(self):
        lit = f("bif:st_point", Literal(7.5), Literal(45.0))
        assert lit.lexical == "POINT(7.5 45)"

    def test_bif_contains(self):
        assert ebv(f("bif:contains", Literal("Mole Antonelliana"),
                     Literal("mole")))


class TestBooleanHelper:
    def test_boolean_literals(self):
        assert boolean(True).value is True
        assert boolean(False).value is False
        assert boolean(True).datatype == XSD_BOOLEAN
