"""Magic-predicate tests and property-based differential testing of the
BGP evaluator against a brute-force reference implementation."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdf import Graph, Literal, RDFS, URIRef
from repro.rdf.terms import Variable
from repro.sparql import Evaluator, SparqlEvalError, query
from repro.sparql.ast import BGP, GroupPattern, SelectQuery, \
    TriplePatternNode

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


class TestMagicContains:
    @pytest.fixture
    def labeled_graph(self):
        g = Graph()
        g.add((ex("mole"), RDFS.label,
               Literal("Mole Antonelliana", lang="it")))
        g.add((ex("colosseum"), RDFS.label, Literal("Roman Colosseum")))
        g.add((ex("tower"), RDFS.label, Literal("Eiffel Tower")))
        return g

    def test_single_word(self, labeled_graph):
        result = query(
            labeled_graph,
            'SELECT ?m WHERE { ?m rdfs:label ?l . '
            '?l bif:contains "antonelliana" . }',
        )
        assert [r["m"] for r in result] == [ex("mole")]

    def test_and_semantics(self, labeled_graph):
        result = query(
            labeled_graph,
            'SELECT ?m WHERE { ?m rdfs:label ?l . '
            '?l bif:contains "roman colosseum" . }',
        )
        assert [r["m"] for r in result] == [ex("colosseum")]

    def test_or_semantics(self, labeled_graph):
        result = query(
            labeled_graph,
            'SELECT ?m WHERE { ?m rdfs:label ?l . '
            "?l bif:contains \"mole OR eiffel\" . }",
        )
        assert {r["m"] for r in result} == {ex("mole"), ex("tower")}

    def test_no_match(self, labeled_graph):
        result = query(
            labeled_graph,
            'SELECT ?m WHERE { ?m rdfs:label ?l . '
            '?l bif:contains "pantheon" . }',
        )
        assert len(result) == 0

    def test_unbound_subject_rejected(self, labeled_graph):
        with pytest.raises(SparqlEvalError):
            query(
                labeled_graph,
                'SELECT ?l WHERE { ?l bif:contains "mole" . }',
            )

    def test_deferred_after_binding_pattern(self, labeled_graph):
        # the magic pattern appears FIRST but must evaluate after the
        # label pattern binds ?l
        result = query(
            labeled_graph,
            'SELECT ?m WHERE { ?l bif:contains "eiffel" . '
            "?m rdfs:label ?l . }",
        )
        assert [r["m"] for r in result] == [ex("tower")]


# ---------------------------------------------------------------------------
# Differential testing: evaluator vs. brute-force join
# ---------------------------------------------------------------------------

_NODES = [ex(c) for c in "abcd"]
_PREDS = [ex(p) for p in ("p", "q")]
_VARS = [Variable(v) for v in ("x", "y", "z")]

_triples = st.tuples(
    st.sampled_from(_NODES),
    st.sampled_from(_PREDS),
    st.sampled_from(_NODES),
)

_pattern_terms = st.sampled_from(_NODES + _VARS)
_pred_terms = st.sampled_from(_PREDS + _VARS)
_patterns = st.builds(
    TriplePatternNode,
    subject=_pattern_terms,
    predicate=_pred_terms,
    object=_pattern_terms,
)


def _brute_force(graph, patterns):
    """Reference BGP semantics: try every assignment of graph triples to
    patterns and keep consistent variable bindings."""
    solutions = set()
    triples = list(graph.triples())
    for combo in itertools.product(triples, repeat=len(patterns)):
        binding = {}
        ok = True
        for pattern, (s, p, o) in zip(patterns, combo):
            for position, value in (
                (pattern.subject, s),
                (pattern.predicate, p),
                (pattern.object, o),
            ):
                if isinstance(position, Variable):
                    if binding.get(position, value) != value:
                        ok = False
                        break
                    binding[position] = value
                elif position != value:
                    ok = False
                    break
            if not ok:
                break
        if ok:
            solutions.add(tuple(sorted(
                (str(k), v) for k, v in binding.items()
            )))
    return solutions


@settings(max_examples=60, deadline=None)
@given(
    graph_triples=st.lists(_triples, min_size=0, max_size=12),
    patterns=st.lists(_patterns, min_size=1, max_size=3),
)
def test_bgp_matches_brute_force(graph_triples, patterns):
    graph = Graph()
    graph.add_all(graph_triples)

    variables = []
    for pattern in patterns:
        for var in pattern.variables():
            if var not in variables:
                variables.append(var)
    select = SelectQuery(
        variables=variables,
        where=GroupPattern([BGP(list(patterns))]),
        distinct=True,
    )
    result = Evaluator(graph).evaluate(select)
    actual = {
        tuple(sorted((str(k), v) for k, v in row.items()))
        for row in result
    }
    assert actual == _brute_force(graph, patterns)
