"""Store-internals telemetry: WAL append/fsync, snapshot writes,
background checkpointer runs, and group-commit batching histograms."""

import pytest

from repro.obs import (
    InMemorySpanExporter,
    MetricsRegistry,
    Tracer,
    set_registry,
    set_tracer,
)
from repro.rdf.terms import Literal, URIRef
from repro.store import CheckpointPolicy, QuadStore
from repro.store.wal import OP_ADD

EX = "http://example.org/"
P = URIRef(EX + "p")


def _op(i):
    return (OP_ADD, (URIRef(f"{EX}s{i}"), P, Literal(str(i))), None)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def span_buffer():
    buffer = InMemorySpanExporter()
    previous = set_tracer(Tracer(enabled=True, exporters=[buffer]))
    yield buffer
    set_tracer(previous)


def _histogram_child(registry, name, **labels):
    family = registry.get(name)
    assert family is not None, f"{name} was never emitted"
    return family.labels(**labels)


class TestWalTelemetry:
    def test_append_latency_observed_per_commit(self, registry, tmp_path):
        with QuadStore(tmp_path / "s") as store:
            for i in range(5):
                store.apply([_op(i)])
        child = _histogram_child(
            registry, "repro_store_wal_append_seconds", store="s"
        )
        assert child.count == 5
        assert child.max > 0
        # fsync histogram only exists for sync=True stores
        assert registry.get("repro_store_wal_fsync_seconds") is None

    def test_fsync_share_observed_for_sync_stores(
        self, registry, tmp_path
    ):
        with QuadStore(tmp_path / "s", sync=True) as store:
            for i in range(3):
                store.apply([_op(i)])
            assert store._wal.last_fsync_seconds > 0
        child = _histogram_child(
            registry, "repro_store_wal_fsync_seconds", store="s"
        )
        assert child.count == 3

    def test_in_memory_store_emits_no_wal_latency(self, registry):
        store = QuadStore()
        store.apply([_op(1)])
        assert registry.get("repro_store_wal_append_seconds") is None


class TestCheckpointTelemetry:
    def test_explicit_checkpoint_times_snapshot_write(
        self, registry, span_buffer, tmp_path
    ):
        with QuadStore(tmp_path / "s") as store:
            store.apply([_op(1)])
            store.checkpoint()
        child = _histogram_child(
            registry, "repro_store_snapshot_write_seconds", store="s"
        )
        assert child.count == 1 and child.max > 0
        names = [span.name for span in span_buffer.spans()]
        assert "store.checkpoint" in names

    def test_background_run_emits_duration_and_span(
        self, registry, span_buffer, tmp_path
    ):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=5),
        ) as store:
            for i in range(12):
                store.apply([_op(i)])
            assert store.wait_for_checkpoints()
            runs = store._checkpointer.stats()["runs"]
        assert runs >= 1
        child = _histogram_child(
            registry, "repro_store_checkpoint_seconds",
            store="s", outcome="ok",
        )
        assert child.count == runs
        assert child.max > 0
        spans = span_buffer.spans()
        autos = [s for s in spans if s.name == "store.auto_checkpoint"]
        assert len(autos) == runs
        assert all(s.attributes["outcome"] == "ok" for s in autos)
        # the explicit-checkpoint span nests under the background run
        inner = [s for s in spans if s.name == "store.checkpoint"]
        assert inner and all(
            any(s.parent_id == a.span_id for a in autos) for s in inner
        )

    def test_failed_background_run_labeled_error(
        self, registry, span_buffer, tmp_path, monkeypatch
    ):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=2),
        ) as store:
            monkeypatch.setattr(
                store, "checkpoint",
                lambda: (_ for _ in ()).throw(OSError("disk full")),
            )
            store.apply([_op(i) for i in range(3)])
            assert store.wait_for_checkpoints()
            assert store._checkpointer.stats()["failures"] >= 1
        child = _histogram_child(
            registry, "repro_store_checkpoint_seconds",
            store="s", outcome="error",
        )
        assert child.count >= 1
        autos = [
            s for s in span_buffer.spans()
            if s.name == "store.auto_checkpoint"
        ]
        assert any(s.attributes["outcome"] == "error" for s in autos)


class TestGroupCommitTelemetry:
    def test_batch_size_and_role_metrics(self, registry):
        store = QuadStore(name="g", group_commit=True)
        for i in range(4):
            store.apply([_op(i)])
        sizes = _histogram_child(
            registry, "repro_store_group_batch_size", store="g"
        )
        assert sizes.count == 4  # four uncontended groups of one
        assert sizes.max == 1.0
        flush = _histogram_child(
            registry, "repro_store_flush_seconds",
            store="g", role="leader",
        )
        assert flush.count == 4
        wait = _histogram_child(
            registry, "repro_store_group_wait_seconds",
            store="g", role="leader",
        )
        assert wait.count == 4

    def test_coalesced_group_observed_once_at_full_size(self, registry):
        import threading
        import time

        store = QuadStore(name="g", group_commit=True)
        store._commit_lock.acquire()
        threads = [
            threading.Thread(
                target=lambda i=i: store.apply([_op(i)])
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with store._group._mutex:
                queued = len(store._group._pending)
            if queued == 4:
                break
            time.sleep(0.005)
        else:  # pragma: no cover - diagnostic path
            pytest.fail("submissions never queued")
        store._commit_lock.release()
        for thread in threads:
            thread.join()

        sizes = _histogram_child(
            registry, "repro_store_group_batch_size", store="g"
        )
        assert sizes.count == 1
        assert sizes.max == 4.0
        followers = _histogram_child(
            registry, "repro_store_group_wait_seconds",
            store="g", role="follower",
        )
        assert followers.count == 3
