"""The ``repro store`` maintenance subcommands (in-process)."""

import json

from repro.cli import main
from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore
from repro.store.persistence import WAL_FILENAME

EX = "http://example.org/"

NQUADS = (
    f'<{EX}a> <{EX}p> "hello" .\n'
    f'<{EX}b> <{EX}p> "world" <{EX}g1> .\n'
)


def _seed(directory, path):
    path.write_text(NQUADS, encoding="utf-8")
    assert main(["store", "load", str(directory), str(path)]) == 0


class TestLoadDump:
    def test_load_then_dump_round_trips(self, tmp_path, capsys):
        _seed(tmp_path, tmp_path / "data.nq")
        out = capsys.readouterr().out
        assert "loaded 2 new quad(s)" in out
        assert "generation 1" in out
        assert main(["store", "dump", str(tmp_path)]) == 0
        assert capsys.readouterr().out == NQUADS

    def test_reload_is_a_noop_generation(self, tmp_path, capsys):
        data = tmp_path / "data.nq"
        _seed(tmp_path, data)
        assert main(["store", "load", str(tmp_path), str(data)]) == 0
        out = capsys.readouterr().out
        assert "loaded 0 new quad(s)" in out


class TestInfo:
    def test_info_reports_generation_and_wal(self, tmp_path, capsys):
        _seed(tmp_path, tmp_path / "data.nq")
        capsys.readouterr()
        assert main(["store", "info", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["generation"] == 1
        assert info["quads"] == 2
        assert info["contexts"] == {"default": 1, f"{EX}g1": 1}
        assert info["wal"]["bytes"] > 0


class TestCompact:
    def test_compact_writes_snapshot_and_resets_wal(
        self, tmp_path, capsys
    ):
        _seed(tmp_path, tmp_path / "data.nq")
        capsys.readouterr()
        assert main(["store", "compact", str(tmp_path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["snapshot"] is not None
        assert (tmp_path / WAL_FILENAME).stat().st_size == 0
        # content unchanged
        assert main(["store", "dump", str(tmp_path)]) == 0
        assert capsys.readouterr().out == NQUADS


class TestRecover:
    def test_recover_restores_last_committed_generation(
        self, tmp_path, capsys
    ):
        """Acceptance: after a torn write, ``repro store recover``
        restores the store byte-identically to the last committed
        generation."""
        with QuadStore(tmp_path) as store:
            store.insert((URIRef(EX + "a"), URIRef(EX + "p"),
                          Literal("one")))
            committed = store.to_nquads()
            store.insert((URIRef(EX + "b"), URIRef(EX + "p"),
                          Literal("two")))
        # tear the last record mid-way
        wal = tmp_path / WAL_FILENAME
        data = wal.read_bytes()
        wal.write_bytes(data[: len(data) - 10])

        assert main(["store", "recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "generation: 1" in out
        assert "torn" in out
        assert main(["store", "dump", str(tmp_path)]) == 0
        assert capsys.readouterr().out == committed

    def test_recover_clean_store(self, tmp_path, capsys):
        _seed(tmp_path, tmp_path / "data.nq")
        capsys.readouterr()
        assert main(["store", "recover", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "state:             clean" in out
        assert "generation: 1" in out
        assert "quads: 2" in out
