"""Automatic checkpointing: policy watermarks and the background
checkpointer thread.

Determinism: the tests drive commits, then ``wait_for_checkpoints()``
blocks until the checkpointer has drained every pending request, so
assertions never race the background snapshot IO.
"""

import pytest

from repro.rdf.terms import Literal, URIRef
from repro.store import CheckpointPolicy, QuadStore, StoreError
from repro.store.persistence import snapshot_files

EX = "http://example.org/"
P = URIRef(EX + "p")


def _commit_one(store, i):
    store.insert((URIRef(f"{EX}s{i}"), P, Literal(str(i))))


class TestPolicy:
    def test_default_is_explicit_only(self):
        policy = CheckpointPolicy()
        assert policy.explicit_only
        assert not policy.due(10**9, 10**9)

    def test_watermarks_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(ops=0)
        with pytest.raises(ValueError):
            CheckpointPolicy(wal_bytes=-1)

    def test_due_per_watermark_kind(self):
        assert CheckpointPolicy(ops=5).due(0, 5)
        assert not CheckpointPolicy(ops=5).due(10**9, 4)
        assert CheckpointPolicy(wal_bytes=100).due(100, 0)
        assert not CheckpointPolicy(wal_bytes=100).due(99, 10**9)

    def test_in_memory_store_rejects_watermarks(self):
        with pytest.raises(StoreError):
            QuadStore(checkpoint_policy=CheckpointPolicy(ops=1))

    def test_explicit_only_store_runs_no_thread(self, tmp_path):
        with QuadStore(tmp_path / "s") as store:
            assert store._checkpointer is None
            for i in range(50):
                _commit_one(store, i)
            assert store.wait_for_checkpoints(0.1)  # trivially idle
            assert snapshot_files(store.directory) == []


class TestAutoCheckpoint:
    def test_op_count_watermark_triggers(self, tmp_path):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=10),
        ) as store:
            for i in range(25):
                _commit_one(store, i)
            assert store.wait_for_checkpoints()
            stats = store._checkpointer.stats()
            assert stats["runs"] >= 1
            assert stats["failures"] == 0
            assert snapshot_files(store.directory)
            # the WAL tail holds at most the ops since the last run
            assert store._wal.records <= 25
            info = store.info()
            assert info["checkpoint_policy"]["ops"] == 10
            assert info["auto_checkpoint"]["runs"] == stats["runs"]
        # recovery sees exactly the committed content
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.size == 25
            assert reopened.recovery.snapshot_generation > 0

    def test_wal_bytes_watermark_triggers(self, tmp_path):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(wal_bytes=512),
        ) as store:
            total = 0
            for i in range(40):
                _commit_one(store, i)
                total = max(total, store._wal.tail_bytes)
            assert store.wait_for_checkpoints()
            assert store._checkpointer.stats()["runs"] >= 1
            # the settled tail is below the watermark plus one
            # commit's worth of records that landed after the last run
            assert store._wal.tail_bytes < total + 512
            assert snapshot_files(store.directory)
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.size == 40

    def test_superseded_snapshots_are_pruned(self, tmp_path):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=5),
        ) as store:
            for i in range(60):
                _commit_one(store, i)
            assert store.wait_for_checkpoints()
            assert store._checkpointer.stats()["runs"] >= 2
            # every run pruned the snapshots it superseded; at most
            # the newest (plus one written while pruning) remain
            assert len(snapshot_files(store.directory)) <= 2

    def test_explicit_checkpoint_resets_the_op_counter(self, tmp_path):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=10),
        ) as store:
            for i in range(8):
                _commit_one(store, i)
            store.checkpoint()  # explicit: counter back to zero
            for i in range(8, 16):
                _commit_one(store, i)
            assert store.wait_for_checkpoints()
            # 8 + 8 commits but never 10 since a checkpoint: the
            # only snapshots are the explicit one and none automatic
            assert store._checkpointer.stats()["runs"] == 0

    def test_checkpoint_failure_is_recorded_not_fatal(
        self, tmp_path, monkeypatch
    ):
        with QuadStore(
            tmp_path / "s",
            checkpoint_policy=CheckpointPolicy(ops=5),
        ) as store:
            import repro.store.engine as engine_module

            def broken(directory, generation, lines):
                raise OSError("disk full")

            monkeypatch.setattr(
                engine_module, "write_snapshot", broken
            )
            for i in range(6):
                _commit_one(store, i)
            assert store.wait_for_checkpoints()
            stats = store._checkpointer.stats()
            assert stats["failures"] >= 1
            assert "disk full" in stats["last_error"]
            monkeypatch.undo()
            # the thread survived; the next trip checkpoints fine
            for i in range(6, 12):
                _commit_one(store, i)
            assert store.wait_for_checkpoints()
            assert store._checkpointer.stats()["runs"] >= 1

    def test_closed_durable_store_refuses_commits(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        _commit_one(store, 0)
        store.close()
        with pytest.raises(StoreError, match="closed"):
            _commit_one(store, 1)
