"""MVCC engine semantics: generations, snapshot isolation, overlays."""

import pytest

from repro.rdf import RDF, URIRef
from repro.rdf.graph import Dataset, FrozenGraphError, Graph
from repro.rdf.terms import Literal
from repro.store import QuadStore, StoreError, is_quad_store

EX = "http://example.org/"


def _triple(i, o="x"):
    return (URIRef(f"{EX}s{i}"), URIRef(EX + "p"), Literal(o))


class TestCommits:
    def test_insert_bumps_generation(self):
        store = QuadStore()
        assert store.generation == 0
        assert store.insert(_triple(1))
        assert store.generation == 1
        assert store.size == 1

    def test_duplicate_insert_is_a_noop_commit(self):
        store = QuadStore()
        store.insert(_triple(1))
        assert not store.insert(_triple(1))
        # no effective ops → no generation bump
        assert store.generation == 1

    def test_batch_commits_atomically_as_one_generation(self):
        store = QuadStore()
        batch = store.batch()
        for i in range(5):
            batch.insert(_triple(i))
        generation = store.commit(batch)
        assert generation == 1
        assert store.size == 5

    def test_add_then_remove_in_one_batch_nets_out(self):
        store = QuadStore()
        batch = store.batch().insert(_triple(1)).remove(_triple(1))
        store.commit(batch)
        assert store.size == 0
        assert not store.head()._contains(*_triple(1))

    def test_remove_expands_pattern(self):
        store = QuadStore()
        for i in range(4):
            store.insert(_triple(i))
        removed = store.remove((None, URIRef(EX + "p"), None))
        assert removed == 4
        assert store.size == 0

    def test_empty_ops_keep_generation(self):
        store = QuadStore()
        store.insert(_triple(1))
        generation, effective = store.apply([])
        assert (generation, effective) == (1, 0)
        assert store.generation == 1


class TestSnapshotIsolation:
    def test_pinned_head_never_sees_later_commits(self):
        """The tentpole invariant: a reader's pinned generation is
        immutable — concurrent commits publish *new* states."""
        store = QuadStore()
        store.insert(_triple(1))
        pinned = store.head()
        assert pinned.generation == 1
        assert len(pinned) == 1

        store.insert(_triple(2))
        store.remove((None, None, None))
        assert store.size == 0

        # the pinned snapshot is byte-for-byte what generation 1 held
        assert pinned.generation == 1
        assert len(pinned) == 1
        assert pinned._contains(*_triple(1))
        assert not pinned._contains(*_triple(2))

    def test_snapshots_are_frozen(self):
        store = QuadStore()
        store.insert(_triple(1))
        pinned = store.head()
        with pytest.raises(FrozenGraphError):
            pinned.add(_triple(2))
        with pytest.raises(FrozenGraphError):
            pinned.remove((None, None, None))

    def test_dataset_snapshot_pins_named_graphs(self):
        store = QuadStore()
        g1 = URIRef(EX + "g1")
        store.insert(_triple(1))
        store.insert(_triple(2), context=g1)
        snapshot = store.dataset_snapshot()
        assert isinstance(snapshot, Dataset)
        assert len(snapshot.default) == 1
        assert len(snapshot.graph(g1)) == 1
        # later writes are invisible to the pinned dataset
        store.insert(_triple(3), context=g1)
        assert len(snapshot.graph(g1)) == 1
        assert len(store.graph(g1)) == 2

    def test_dataset_snapshot_union_deduplicates(self):
        store = QuadStore()
        g1 = URIRef(EX + "g1")
        store.insert(_triple(1))
        store.insert(_triple(1), context=g1)
        union = store.dataset_snapshot().union_graph()
        assert len(list(union.triples((None, None, None)))) == 1

    def test_unknown_named_graph_is_empty_view(self):
        store = QuadStore()
        view = store.dataset_snapshot().graph(URIRef(EX + "nope"))
        assert len(view) == 0
        assert list(view.triples((None, None, None))) == []

    def test_remove_graph_refused_on_snapshot(self):
        store = QuadStore()
        store.insert(_triple(1), context=URIRef(EX + "g1"))
        snapshot = store.dataset_snapshot()
        with pytest.raises(FrozenGraphError):
            snapshot.remove_graph(URIRef(EX + "g1"))


class TestOverlays:
    def test_overlay_folds_past_limit(self):
        store = QuadStore(overlay_limit=8)
        for i in range(20):
            store.insert(_triple(i))
        info = store.info()
        # folding keeps the overlay bounded by the limit
        assert info["overlay_ops"] <= 8
        assert store.size == 20

    def test_fold_preserves_contents_and_generation_semantics(self):
        store = QuadStore(overlay_limit=4)
        expected = set()
        for i in range(12):
            store.insert(_triple(i))
            expected.add(_triple(i))
            if i % 3 == 0:
                store.remove((URIRef(f"{EX}s{i}"), None, None))
                expected.discard(_triple(i))
        assert set(store.head().triples((None, None, None))) == expected

    def test_compact_folds_without_changing_contents(self):
        store = QuadStore(overlay_limit=1024)
        for i in range(6):
            store.insert(_triple(i))
        store.remove((URIRef(EX + "s0"), None, None))
        before = store.to_nquads()
        generation = store.generation
        summary = store.compact()
        assert summary["folded_contexts"] >= 1
        assert store.to_nquads() == before
        assert store.generation == generation  # same data, same gen


class TestSyncDataset:
    def test_sync_is_one_generation_and_idempotent(self):
        store = QuadStore()
        dataset = Dataset()
        dataset.default.add(_triple(1))
        dataset.graph(URIRef(EX + "g1")).add(_triple(2))
        first = store.sync_dataset(dataset)
        assert first == 1
        assert store.size == 2
        # identical dataset → nothing to reconcile, no new generation
        assert store.sync_dataset(dataset) == first

    def test_sync_removes_vanished_quads(self):
        store = QuadStore()
        dataset = Dataset()
        dataset.default.add(_triple(1))
        dataset.default.add(_triple(2))
        store.sync_dataset(dataset)
        smaller = Dataset()
        smaller.default.add(_triple(1))
        store.sync_dataset(smaller)
        assert store.size == 1
        assert store.head()._contains(*_triple(1))


class TestStatistics:
    def test_statistics_maintained_incrementally(self):
        """Commits keep the cached snapshot in step with a fresh
        collection pass — without full rebuilds."""
        store = QuadStore()
        city = URIRef(EX + "City")
        batch = store.batch()
        for i in range(5):
            batch.insert((URIRef(f"{EX}s{i}"), RDF.type, city))
        store.commit(batch)
        stats = store.statistics()
        assert stats.class_counts[city] == 5

        store.remove((URIRef(EX + "s0"), None, None))
        fresh_view = store.head()
        maintained = store.statistics()
        assert maintained.class_counts[city] == 4
        assert maintained.fingerprint == fresh_view.generation

        from repro.analysis.stats import GraphStatistics

        reference = GraphStatistics.collect(fresh_view)
        assert maintained.total == reference.total
        assert maintained.class_counts == reference.class_counts
        assert maintained.predicates == reference.predicates


class TestMisc:
    def test_is_quad_store_duck_typing(self):
        assert is_quad_store(QuadStore())
        assert not is_quad_store(Graph())
        assert not is_quad_store(object())

    def test_context_coercion_rejects_garbage(self):
        store = QuadStore()
        with pytest.raises(TypeError):
            store.insert(_triple(1), context=123)

    def test_info_shape(self):
        store = QuadStore(name="mem")
        store.insert(_triple(1))
        info = store.info()
        assert info["name"] == "mem"
        assert info["directory"] is None
        assert info["generation"] == 1
        assert info["quads"] == 1
        assert "wal" not in info  # in-memory store does no file IO

    def test_store_error_is_value_error(self):
        assert issubclass(StoreError, ValueError)
