"""Concurrent reader/writer equivalence under MVCC.

Readers pin snapshots while a writer commits multi-op batches. The
invariant under test is batch atomicity: every pinned view contains
each batch either completely or not at all, and generations observed
by any single reader never go backwards. Runs under ``REPRO_SANITIZE=1``
like the rest of the suite — snapshots are immutable, so the store
sanitizer's mutation-during-iteration tripwire must stay silent.
"""

import threading

from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore, StoreGraph

EX = "http://example.org/"
BATCHES = 30
PER_BATCH = 5


def _batch_triples(b):
    return [
        (URIRef(f"{EX}s{b}_{j}"), URIRef(EX + "p"), Literal(str(b)))
        for j in range(PER_BATCH)
    ]


class TestReaderWriterEquivalence:
    def test_readers_only_see_whole_batches(self):
        store = QuadStore()
        errors = []
        done = threading.Event()

        def writer():
            for b in range(BATCHES):
                batch = store.batch()
                for triple in _batch_triples(b):
                    batch.insert(triple)
                store.commit(batch)
            done.set()

        def reader():
            last_generation = 0
            while not done.is_set() or last_generation < BATCHES:
                view = store.head()
                if view.generation < last_generation:
                    errors.append(
                        f"generation went backwards: "
                        f"{last_generation} -> {view.generation}"
                    )
                    return
                last_generation = view.generation
                counts = {}
                for s, p, o in view.triples(
                    (None, URIRef(EX + "p"), None)
                ):
                    counts[o.lexical] = counts.get(o.lexical, 0) + 1
                for b, count in counts.items():
                    if count != PER_BATCH:
                        errors.append(
                            f"partial batch {b} visible at generation "
                            f"{view.generation}: {count}/{PER_BATCH}"
                        )
                        return
                if len(counts) != view.generation:
                    errors.append(
                        f"generation {view.generation} shows "
                        f"{len(counts)} batches"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        # the final state is the full catalog, exactly once each
        assert store.generation == BATCHES
        assert store.size == BATCHES * PER_BATCH

    def test_concurrent_run_equals_sequential_run(self):
        """Order of interleaved commits from two writers may vary, but
        the final content must equal the sequential union (all batches
        are disjoint)."""
        concurrent = QuadStore()
        threads = [
            threading.Thread(target=lambda lo=lo: [
                concurrent.commit(
                    concurrent.batch().add_all(_batch_triples(b))
                )
                for b in range(lo, BATCHES, 2)
            ])
            for lo in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        sequential = QuadStore()
        for b in range(BATCHES):
            sequential.commit(
                sequential.batch().add_all(_batch_triples(b))
            )
        assert concurrent.to_nquads() == sequential.to_nquads()
        assert concurrent.generation == sequential.generation

    def test_buffered_facades_flush_race_free(self):
        """Two buffered facades over different contexts flush
        concurrently; each flush is one atomic generation."""
        store = QuadStore()
        contexts = [URIRef(f"{EX}g{i}") for i in range(2)]

        def work(context, lo):
            graph = StoreGraph(store, context=context, buffered=True)
            for b in range(lo, BATCHES, 2):
                for triple in _batch_triples(b):
                    graph.insert(triple)
                graph.flush()

        threads = [
            threading.Thread(target=work, args=(ctx, lo))
            for lo, ctx in enumerate(contexts)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for lo, context in enumerate(contexts):
            expected = sum(
                len(_batch_triples(b)) for b in range(lo, BATCHES, 2)
            )
            assert len(store.graph(context)) == expected
