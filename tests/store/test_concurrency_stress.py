"""Concurrent reader/writer equivalence under MVCC.

Readers pin snapshots while a writer commits multi-op batches. The
invariant under test is batch atomicity: every pinned view contains
each batch either completely or not at all, and generations observed
by any single reader never go backwards. Runs under ``REPRO_SANITIZE=1``
like the rest of the suite — snapshots are immutable, so the store
sanitizer's mutation-during-iteration tripwire must stay silent.
"""

import threading

from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore, StoreGraph

EX = "http://example.org/"
BATCHES = 30
PER_BATCH = 5


def _batch_triples(b):
    return [
        (URIRef(f"{EX}s{b}_{j}"), URIRef(EX + "p"), Literal(str(b)))
        for j in range(PER_BATCH)
    ]


class TestReaderWriterEquivalence:
    def test_readers_only_see_whole_batches(self):
        store = QuadStore()
        errors = []
        done = threading.Event()

        def writer():
            for b in range(BATCHES):
                batch = store.batch()
                for triple in _batch_triples(b):
                    batch.insert(triple)
                store.commit(batch)
            done.set()

        def reader():
            last_generation = 0
            while not done.is_set() or last_generation < BATCHES:
                view = store.head()
                if view.generation < last_generation:
                    errors.append(
                        f"generation went backwards: "
                        f"{last_generation} -> {view.generation}"
                    )
                    return
                last_generation = view.generation
                counts = {}
                for s, p, o in view.triples(
                    (None, URIRef(EX + "p"), None)
                ):
                    counts[o.lexical] = counts.get(o.lexical, 0) + 1
                for b, count in counts.items():
                    if count != PER_BATCH:
                        errors.append(
                            f"partial batch {b} visible at generation "
                            f"{view.generation}: {count}/{PER_BATCH}"
                        )
                        return
                if len(counts) != view.generation:
                    errors.append(
                        f"generation {view.generation} shows "
                        f"{len(counts)} batches"
                    )
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]
        # the final state is the full catalog, exactly once each
        assert store.generation == BATCHES
        assert store.size == BATCHES * PER_BATCH

    def test_concurrent_run_equals_sequential_run(self):
        """Order of interleaved commits from two writers may vary, but
        the final content must equal the sequential union (all batches
        are disjoint)."""
        concurrent = QuadStore()
        threads = [
            threading.Thread(target=lambda lo=lo: [
                concurrent.commit(
                    concurrent.batch().add_all(_batch_triples(b))
                )
                for b in range(lo, BATCHES, 2)
            ])
            for lo in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        sequential = QuadStore()
        for b in range(BATCHES):
            sequential.commit(
                sequential.batch().add_all(_batch_triples(b))
            )
        assert concurrent.to_nquads() == sequential.to_nquads()
        assert concurrent.generation == sequential.generation

    def test_buffered_facades_flush_race_free(self):
        """Two buffered facades over different contexts flush
        concurrently; each flush is one atomic generation."""
        store = QuadStore()
        contexts = [URIRef(f"{EX}g{i}") for i in range(2)]

        def work(context, lo):
            graph = StoreGraph(store, context=context, buffered=True)
            for b in range(lo, BATCHES, 2):
                for triple in _batch_triples(b):
                    graph.insert(triple)
                graph.flush()

        threads = [
            threading.Thread(target=work, args=(ctx, lo))
            for lo, ctx in enumerate(contexts)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for lo, context in enumerate(contexts):
            expected = sum(
                len(_batch_triples(b)) for b in range(lo, BATCHES, 2)
            )
            assert len(store.graph(context)) == expected


class TestInterleavedRemove:
    """Regression: autocommit ``StoreGraph.remove`` matched the pattern
    in one lock acquisition and applied the OP_REMOVEs in another, so
    two racing removers could both claim the same triple. Conservation
    invariant: each round inserts exactly one triple, so the racers'
    removal counts must sum to exactly one."""

    ROUNDS = 100

    def _run_rounds(self, graph, subject, triple):
        """One inserter vs two racing removers, round by round.

        Two rendezvous per round: ``go`` releases the race only after
        the insert landed, ``done`` holds the next insert until both
        removers finished this round (otherwise the next insert could
        race a stale remover and break the one-triple-per-round
        invariant the conservation assert depends on)."""
        removed = [0, 0]
        go = threading.Barrier(3)
        done = threading.Barrier(3)

        def remover(slot):
            for _ in range(self.ROUNDS):
                go.wait()
                removed[slot] += graph.remove((subject, None, None))
                done.wait()

        threads = [
            threading.Thread(target=remover, args=(slot,))
            for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        inserted = 0
        for _ in range(self.ROUNDS):
            inserted += graph.insert(triple)
            go.wait()  # both removers race for the single triple
            done.wait()
        for thread in threads:
            thread.join()
        assert inserted == self.ROUNDS  # every round started empty
        return removed

    def test_racing_removers_conserve_counts(self):
        store = QuadStore()
        graph = StoreGraph(store)
        subject = URIRef(EX + "contested")
        triple = (subject, URIRef(EX + "p"), Literal("x"))
        removed = self._run_rounds(graph, subject, triple)
        assert sum(removed) == self.ROUNDS
        assert len(graph) == 0

    def test_buffered_racing_removers_conserve_counts(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        subject = URIRef(EX + "contested")
        triple = (subject, URIRef(EX + "p"), Literal("x"))
        removed = self._run_rounds(graph, subject, triple)
        assert sum(removed) == self.ROUNDS
        assert len(graph) == 0
        graph.flush()
        assert store.size == 0


class TestWritePathMachineryUnderStress:
    """Group commit + background checkpointer running together while
    readers pin snapshots — the lock sanitizer (REPRO_SANITIZE=1 or the
    fixture) must observe no inversion between the commit lock, the
    queue mutex and the checkpointer condition."""

    def test_group_commit_with_auto_checkpoint_and_readers(
        self, tmp_path, lock_sanitizer
    ):
        from repro.store import CheckpointPolicy

        store = QuadStore(
            tmp_path / "s",
            group_commit=True,
            checkpoint_policy=CheckpointPolicy(ops=20),
        )
        stop = threading.Event()
        errors = []

        def writer(t):
            for b in range(BATCHES):
                for triple in _batch_triples(f"{t}_{b}"):
                    generation, _ = store.apply(
                        [("+", triple, None)]
                    )
                    if generation <= 0:
                        errors.append("bad generation")

        def reader():
            while not stop.is_set():
                view = store.head()
                sum(1 for _ in view.triples((None, None, None)))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [
            threading.Thread(target=writer, args=(t,)) for t in range(4)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert store.wait_for_checkpoints()
        assert store.size == 4 * BATCHES * PER_BATCH
        dump = store.to_nquads()
        store.close()
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.to_nquads() == dump
