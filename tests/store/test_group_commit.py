"""Group commit: concurrent batches coalesce into shared flushes while
every submitter observes the result serial commits would have given it.
"""

import threading
import time

import pytest

from repro.obs import InMemorySpanExporter, Tracer, set_tracer
from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore
from repro.store.wal import OP_ADD

EX = "http://example.org/"
P = URIRef(EX + "p")


def _op(key, i):
    return (OP_ADD, (URIRef(f"{EX}{key}{i}"), P, Literal(str(i))), None)


class TestSingleThreaded:
    """With no contention every submission leads its own group — the
    queue must be observably identical to the direct commit path."""

    def test_results_match_direct_commits(self):
        grouped = QuadStore(group_commit=True)
        direct = QuadStore()
        for i in range(10):
            assert grouped.apply([_op("s", i)]) == direct.apply(
                [_op("s", i)]
            )
        # duplicate insert: same no-op on both paths
        assert grouped.apply([_op("s", 3)]) == direct.apply([_op("s", 3)])
        assert grouped.to_nquads() == direct.to_nquads()
        assert grouped.generation == direct.generation
        stats = grouped._group.stats()
        assert stats["submissions"] == 11
        assert stats["batched"] == 0

    def test_noop_submission_does_not_bump_generation(self):
        store = QuadStore(group_commit=True)
        store.apply([_op("s", 1)])
        generation, effective = store.apply([_op("s", 1)])
        assert (generation, effective) == (1, 0)
        assert store.generation == 1


class TestConcurrent:
    def test_n_threads_equal_serial_commits(self):
        """8 writers, disjoint triples: whatever the interleaving and
        grouping, content equals the serial run and every submitter
        sees its own effective count."""
        store = QuadStore(group_commit=True)
        results = {}

        def writer(t):
            mine = []
            for i in range(25):
                mine.append(store.apply([_op(f"t{t}_", i)]))
            results[t] = mine

        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        serial = QuadStore()
        for t in range(8):
            for i in range(25):
                serial.apply([_op(f"t{t}_", i)])
        assert store.to_nquads() == serial.to_nquads()
        assert store.size == 200
        # every distinct insert was effective exactly once, and the
        # generation each submitter saw is never past the final head
        for t, mine in results.items():
            assert [eff for _, eff in mine] == [1] * 25
            assert all(1 <= gen <= store.generation for gen, _ in mine)
        stats = store._group.stats()
        assert stats["submissions"] == 200
        assert stats["groups"] == store.generation
        assert stats["batched"] == 200 - store.generation

    def test_duplicate_insert_races_resolve_to_one_effective(self):
        """Two writers inserting the same triple: exactly one effective
        op total, whether they share a group or not."""
        for _ in range(20):
            store = QuadStore(group_commit=True)
            outcomes = []
            barrier = threading.Barrier(2)

            def submit():
                barrier.wait()
                outcomes.append(store.apply([_op("dup", 0)]))

            threads = [
                threading.Thread(target=submit) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sum(eff for _, eff in outcomes) == 1
            assert store.size == 1

    def test_blocked_leader_coalesces_followers(self, tmp_path):
        """Hold the commit lock while four submitters queue up: on
        release one leader must flush all four as one WAL record and
        one generation."""
        store = QuadStore(tmp_path / "s", group_commit=True)
        store._commit_lock.acquire()
        threads = [
            threading.Thread(
                target=lambda i=i: store.apply([_op("w", i)])
            )
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 5.0
        while time.time() < deadline:
            with store._group._mutex:
                queued = len(store._group._pending)
            if queued == 4:
                break
            time.sleep(0.005)
        else:  # pragma: no cover - diagnostic path
            pytest.fail("submissions never queued")
        store._commit_lock.release()
        for thread in threads:
            thread.join()

        assert store.generation == 1  # one published generation
        assert store._wal.records == 1  # one WAL append
        assert store.size == 4
        stats = store._group.stats()
        assert stats["groups"] == 1
        assert stats["batched"] == 3
        assert stats["largest_group"] == 4
        store.close()

    def test_failed_group_commit_publishes_nothing(
        self, tmp_path, monkeypatch
    ):
        store = QuadStore(tmp_path / "s", group_commit=True)
        store.apply([_op("seed", 0)])

        def broken_append(generation, ops):
            raise OSError("disk full")

        monkeypatch.setattr(store._wal, "append", broken_append)
        errors = []

        def submit(i):
            try:
                store.apply([_op("w", i)])
            except OSError as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # every submitter saw the failure; no state was published
        assert len(errors) == 3
        assert store.generation == 1
        assert store.size == 1
        monkeypatch.undo()
        generation, effective = store.apply([_op("w", 99)])
        assert (generation, effective) == (2, 1)
        store.close()

    def test_followers_commit_traces_to_their_own_span(self):
        """Cross-thread trace propagation: a submission flushed by
        *another* thread's leader must still surface as a
        ``store.group_commit`` span under the submitting thread's
        active span — the follower's request trace shows its commit
        even though the leader did the IO."""
        buffer = InMemorySpanExporter()
        previous = set_tracer(Tracer(enabled=True, exporters=[buffer]))
        try:
            store = QuadStore(group_commit=True)
            store._commit_lock.acquire()
            from repro.obs import get_tracer

            def submit(i):
                with get_tracer().span(f"request-{i}"):
                    store.apply([_op("w", i)])

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(3)
            ]
            for thread in threads:
                thread.start()
            deadline = time.time() + 5.0
            while time.time() < deadline:
                with store._group._mutex:
                    queued = len(store._group._pending)
                if queued == 3:
                    break
                time.sleep(0.005)
            else:  # pragma: no cover - diagnostic path
                pytest.fail("submissions never queued")
            store._commit_lock.release()
            for thread in threads:
                thread.join()
        finally:
            set_tracer(previous)

        assert store.generation == 1  # they really shared one group
        spans = buffer.spans()
        requests = {
            span.name: span for span in spans
            if span.name.startswith("request-")
        }
        commits = [
            span for span in spans if span.name == "store.group_commit"
        ]
        assert len(requests) == 3 and len(commits) == 3
        roles = sorted(span.attributes["role"] for span in commits)
        assert roles == ["follower", "follower", "leader"]
        # every commit span hangs off its own submitter's request span
        # and shares that request's trace id
        for commit in commits:
            parent = next(
                (
                    request for request in requests.values()
                    if request.span_id == commit.parent_id
                ),
                None,
            )
            assert parent is not None, commit.attributes
            assert commit.trace_id == parent.trace_id
            assert commit.attributes["generation"] == 1

    def test_grouped_store_recovers_after_crash(self, tmp_path):
        """WAL records written by group commits replay like any other."""
        store = QuadStore(tmp_path / "s", sync=True, group_commit=True)
        threads = [
            threading.Thread(
                target=lambda t=t: [
                    store.apply([_op(f"t{t}_", i)]) for i in range(10)
                ]
            )
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        dump = store.to_nquads()
        store.close()  # simulate crash-and-restart: reopen from disk
        with QuadStore(tmp_path / "s") as reopened:
            assert reopened.to_nquads() == dump
            assert reopened.size == 40
