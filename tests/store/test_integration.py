"""Cross-layer integration: evaluator pinning, EXPLAIN, batch commits,
sparqlPuSH and the platform's store attachment."""

import pytest

from repro.core.batch import BatchAnnotator
from repro.platform.sparql_push import SparqlPushService
from repro.rdf.terms import Literal, URIRef
from repro.sparql.evaluator import Evaluator
from repro.store import QuadStore, StoreGraph

EX = "http://example.org/"
P = URIRef(EX + "p")


def _triple(i, o="x"):
    return (URIRef(f"{EX}s{i}"), P, Literal(o))


class TestEvaluatorPinning:
    def test_evaluator_pins_one_generation(self):
        """Acceptance: reads through pinned snapshots — a query started
        before a commit never observes it, even mid-batch."""
        store = QuadStore()
        store.insert(_triple(1))
        evaluator = Evaluator(store)
        assert evaluator.generation == 1

        query = "SELECT ?s WHERE { ?s ?p ?o }"
        assert len(list(evaluator.evaluate(query))) == 1

        # an in-flight writer commits between two evaluations
        store.insert(_triple(2))
        assert len(list(evaluator.evaluate(query))) == 1
        # a *new* evaluator pins the new generation
        fresh = Evaluator(store)
        assert fresh.generation == 2
        assert len(list(fresh.evaluate(query))) == 2

    def test_graph_patterns_address_named_contexts(self):
        store = QuadStore()
        g1 = URIRef(EX + "g1")
        store.insert(_triple(1))
        store.insert(_triple(2, o="named"), context=g1)
        evaluator = Evaluator(store)
        rows = list(evaluator.evaluate(
            "SELECT ?g ?s WHERE { GRAPH ?g { ?s ?p ?o } }"
        ))
        assert len(rows) == 1
        (row,) = rows
        assert str(list(row.values())[0]) in (str(g1), EX + "s2")

    def test_union_default_graph(self):
        store = QuadStore()
        store.insert(_triple(1))
        store.insert(_triple(2), context=URIRef(EX + "g1"))
        evaluator = Evaluator(store)
        rows = list(evaluator.evaluate("SELECT ?s WHERE { ?s ?p ?o }"))
        assert len(rows) == 2  # plain BGPs see the union

    def test_explain_surfaces_pinned_generation(self):
        store = QuadStore()
        store.insert(_triple(1))
        store.insert(_triple(2))
        explanation = Evaluator(store).explain(
            "SELECT ?s WHERE { ?s ?p ?o }"
        )
        assert explanation.generation == 2
        assert "pinned store generation: 2" in explanation.render()

    def test_plain_graph_explain_has_no_generation_line(self):
        from repro.rdf.graph import Graph

        graph = Graph()
        graph.add(_triple(1))
        explanation = Evaluator(graph).explain(
            "SELECT ?s WHERE { ?s ?p ?o }"
        )
        assert explanation.generation is None
        assert "pinned store generation" not in explanation.render()


class TestBatchAnnotatorCommits:
    def test_watermark_flushes_buffered_target(self):
        """One checkpoint batch → one generation-stamped commit."""
        from types import SimpleNamespace

        class FakePlatform:
            def __init__(self, count):
                self._items = {
                    pid: SimpleNamespace(
                        pid=pid, title=str(pid), plain_tags=[],
                        resource=URIRef(f"urn:content:{pid}"),
                    )
                    for pid in range(1, count + 1)
                }
                self.annotator = SimpleNamespace(
                    annotate=lambda title, tags: SimpleNamespace(
                        annotations=[SimpleNamespace(
                            resource=URIRef(f"urn:concept:{title}")
                        )],
                        broker_result=None,
                    ),
                    broker=None,
                )

            def contents(self):
                return list(self._items.values())

            def content(self, pid):
                return self._items[pid]

        store = QuadStore()
        target = StoreGraph(store, buffered=True)
        generations = []
        annotator = BatchAnnotator(
            FakePlatform(10), target, batch_size=4,
            on_progress=lambda cp: generations.append(store.generation),
        )
        stats = annotator.run()
        assert stats.processed == 10
        # 10 items / batch_size 4 → 3 commits (4 + 4 + 2), each flushed
        # *before* its progress callback observed the generation
        assert generations == [1, 2, 3]
        assert store.generation == 3
        assert target.pending_ops == 0
        assert store.size == 10


class TestSparqlPush:
    def test_store_source_pins_per_round(self):
        store = QuadStore()
        store.insert(_triple(1))
        service = SparqlPushService(store)
        sub_id = service.register(
            f"SELECT ?s WHERE {{ ?s <{EX}p> ?o }}"
        )
        received = []
        service.listen(sub_id, "client", lambda t, p: received.append(p))

        store.insert(_triple(2))
        deliveries = service.notify_update()
        assert deliveries[sub_id] == 1
        assert len(received) == 1
        assert len(received[0]["added"]) == 1

        # no store change → no delivery
        assert service.notify_update() == {}


class TestPlatformAttachment:
    @pytest.fixture(scope="class")
    def platform(self):
        from repro.platform import Platform
        from repro.platform.models import Capture, MediaType

        platform = Platform()
        platform.register_user("alice")
        platform.upload(Capture(
            username="alice",
            title="Tramonto sulla Mole Antonelliana",
            tags=("mole",), timestamp=1000,
            media_type=MediaType.PHOTO,
        ))
        return platform

    def test_attach_syncs_and_evaluator_pins(self, platform, tmp_path):
        store = QuadStore(tmp_path)
        platform.attach_store(store)
        assert store.generation == 1
        assert store.size > 0

        evaluator = platform.evaluator()
        assert evaluator.generation == store.generation
        rows = list(evaluator.evaluate(
            "SELECT ?s WHERE { ?s ?p ?o } LIMIT 3"
        ))
        assert rows

        # unchanged platform → no-op sync, generation stable
        assert platform.synchronize_store() == 1

        # the store survives a restart with identical content
        dump = store.to_nquads()
        store.close()
        with QuadStore(tmp_path) as reopened:
            assert reopened.to_nquads() == dump
