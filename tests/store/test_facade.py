"""StoreGraph: the mutable Graph facade over one store context."""

import pytest

from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore, StoreGraph
from repro.store.wal import OP_ADD, OP_REMOVE

EX = "http://example.org/"


def _triple(i, o="x"):
    return (URIRef(f"{EX}s{i}"), URIRef(EX + "p"), Literal(o))


class TestAutocommit:
    def test_insert_commits_immediately(self):
        store = QuadStore()
        graph = StoreGraph(store)
        assert graph.insert(_triple(1))
        assert store.generation == 1
        assert not graph.insert(_triple(1))  # newness reported
        assert store.generation == 1  # duplicate did not commit

    def test_add_all_is_one_generation(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.add_all([_triple(i) for i in range(5)])
        assert store.generation == 1
        assert len(graph) == 5

    def test_remove_pattern(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.add_all([_triple(i) for i in range(3)])
        assert graph.remove((None, URIRef(EX + "p"), None)) == 3
        assert len(graph) == 0

    def test_named_context_routes_to_that_graph(self):
        store = QuadStore()
        g1 = URIRef(EX + "g1")
        graph = StoreGraph(store, context=g1)
        graph.insert(_triple(1))
        assert len(store.graph(g1)) == 1
        assert len(store.graph(None)) == 0


class TestBuffered:
    def test_flush_commits_one_generation(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        for i in range(4):
            graph.insert(_triple(i))
        assert store.generation == 0  # nothing committed yet
        assert graph.pending_ops == 4
        generation = graph.flush()
        assert generation == 1
        assert graph.pending_ops == 0
        assert store.size == 4

    def test_buffered_reads_see_pending_writes(self):
        store = QuadStore()
        store.insert(_triple(0))
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        graph.remove((URIRef(EX + "s0"), None, None))
        # the facade merges pending ops over the live head
        assert len(graph) == 1
        triples = set(graph.triples((None, None, None)))
        assert triples == {_triple(1)}
        # the store itself is untouched until flush
        assert store.size == 1
        graph.flush()
        assert store.size == 1
        assert store.head()._contains(*_triple(1))

    def test_last_op_per_triple_wins(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        graph.remove((URIRef(EX + "s1"), None, None))
        graph.insert(_triple(1))
        graph.flush()
        assert store.head()._contains(*_triple(1))

    def test_empty_flush_commits_nothing(self):
        store = QuadStore()
        store.insert(_triple(1))
        graph = StoreGraph(store, buffered=True)
        assert graph.flush() == 1
        assert store.generation == 1

    def test_version_tracks_generation_and_buffer(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        v0 = graph._version
        graph.insert(_triple(1))
        v1 = graph._version
        assert v1 != v0  # pending op changes the staleness key
        graph.flush()
        assert graph._version != v1

    def test_predicate_statistics_with_pending(self):
        store = QuadStore()
        store.insert(_triple(1))
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(2))
        stats = graph.predicate_statistics()
        count, subjects, objects = stats[URIRef(EX + "p")]
        assert count == 2
        assert subjects == 2

    def test_copy_detaches_from_store(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.insert(_triple(1))
        copy = graph.copy()
        copy.add(_triple(2))
        assert len(copy) == 2
        assert store.size == 1


class TestFlushFailure:
    """Regression: a failed flush used to clear the buffer first and
    silently lose every drained op."""

    def test_failed_flush_keeps_ops_and_raises(self, monkeypatch):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        for i in range(3):
            graph.insert(_triple(i))

        def broken_apply(ops):
            raise OSError("disk full")

        monkeypatch.setattr(store, "apply", broken_apply)
        with pytest.raises(OSError, match="disk full"):
            graph.flush()
        # nothing lost: the drained ops are back in the buffer
        assert graph.pending_ops == 3
        assert store.size == 0

        monkeypatch.undo()
        generation = graph.flush()  # the retry commits everything
        assert generation == 1
        assert graph.pending_ops == 0
        assert store.size == 3

    def test_restore_keeps_concurrently_buffered_ops_winning(
        self, monkeypatch
    ):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        assert graph._pending == {_triple(1): OP_ADD}

        def racing_apply(ops):
            # a "concurrent" writer retracts the triple while the
            # flush is failing; its op must survive the restore
            graph._push(OP_REMOVE, _triple(1))
            raise OSError("disk full")

        monkeypatch.setattr(store, "apply", racing_apply)
        with pytest.raises(OSError):
            graph.flush()
        assert graph._pending == {_triple(1): OP_REMOVE}

    def test_closed_store_flush_is_not_silent(self, tmp_path):
        store = QuadStore(tmp_path / "s")
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        store.close()
        with pytest.raises(ValueError):
            graph.flush()
        assert graph.pending_ops == 1


class TestRemoveAtomicity:
    """Regression: autocommit remove matched in one lock acquisition
    and pushed the OP_REMOVEs in another."""

    def test_autocommit_remove_delegates_to_store(self, monkeypatch):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.add_all([_triple(i) for i in range(3)])
        seen = {}
        original = store.remove

        def spying_remove(pattern, context=None):
            seen["pattern"] = pattern
            return original(pattern, context)

        monkeypatch.setattr(store, "remove", spying_remove)
        assert graph.remove((None, URIRef(EX + "p"), None)) == 3
        # match + push happened inside the store's commit lock
        assert seen["pattern"] == (None, URIRef(EX + "p"), None)
        assert len(graph) == 0

    def test_buffered_remove_matches_and_pushes_under_one_lock(self):
        store = QuadStore()
        store.insert(_triple(1))
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(2))
        removed = graph.remove((None, URIRef(EX + "p"), None))
        assert removed == 2
        assert graph.pending_ops == 2
        assert len(graph) == 0
