"""StoreGraph: the mutable Graph facade over one store context."""

from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore, StoreGraph

EX = "http://example.org/"


def _triple(i, o="x"):
    return (URIRef(f"{EX}s{i}"), URIRef(EX + "p"), Literal(o))


class TestAutocommit:
    def test_insert_commits_immediately(self):
        store = QuadStore()
        graph = StoreGraph(store)
        assert graph.insert(_triple(1))
        assert store.generation == 1
        assert not graph.insert(_triple(1))  # newness reported
        assert store.generation == 1  # duplicate did not commit

    def test_add_all_is_one_generation(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.add_all([_triple(i) for i in range(5)])
        assert store.generation == 1
        assert len(graph) == 5

    def test_remove_pattern(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.add_all([_triple(i) for i in range(3)])
        assert graph.remove((None, URIRef(EX + "p"), None)) == 3
        assert len(graph) == 0

    def test_named_context_routes_to_that_graph(self):
        store = QuadStore()
        g1 = URIRef(EX + "g1")
        graph = StoreGraph(store, context=g1)
        graph.insert(_triple(1))
        assert len(store.graph(g1)) == 1
        assert len(store.graph(None)) == 0


class TestBuffered:
    def test_flush_commits_one_generation(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        for i in range(4):
            graph.insert(_triple(i))
        assert store.generation == 0  # nothing committed yet
        assert graph.pending_ops == 4
        generation = graph.flush()
        assert generation == 1
        assert graph.pending_ops == 0
        assert store.size == 4

    def test_buffered_reads_see_pending_writes(self):
        store = QuadStore()
        store.insert(_triple(0))
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        graph.remove((URIRef(EX + "s0"), None, None))
        # the facade merges pending ops over the live head
        assert len(graph) == 1
        triples = set(graph.triples((None, None, None)))
        assert triples == {_triple(1)}
        # the store itself is untouched until flush
        assert store.size == 1
        graph.flush()
        assert store.size == 1
        assert store.head()._contains(*_triple(1))

    def test_last_op_per_triple_wins(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(1))
        graph.remove((URIRef(EX + "s1"), None, None))
        graph.insert(_triple(1))
        graph.flush()
        assert store.head()._contains(*_triple(1))

    def test_empty_flush_commits_nothing(self):
        store = QuadStore()
        store.insert(_triple(1))
        graph = StoreGraph(store, buffered=True)
        assert graph.flush() == 1
        assert store.generation == 1

    def test_version_tracks_generation_and_buffer(self):
        store = QuadStore()
        graph = StoreGraph(store, buffered=True)
        v0 = graph._version
        graph.insert(_triple(1))
        v1 = graph._version
        assert v1 != v0  # pending op changes the staleness key
        graph.flush()
        assert graph._version != v1

    def test_predicate_statistics_with_pending(self):
        store = QuadStore()
        store.insert(_triple(1))
        graph = StoreGraph(store, buffered=True)
        graph.insert(_triple(2))
        stats = graph.predicate_statistics()
        count, subjects, objects = stats[URIRef(EX + "p")]
        assert count == 2
        assert subjects == 2

    def test_copy_detaches_from_store(self):
        store = QuadStore()
        graph = StoreGraph(store)
        graph.insert(_triple(1))
        copy = graph.copy()
        copy.add(_triple(2))
        assert len(copy) == 2
        assert store.size == 1
