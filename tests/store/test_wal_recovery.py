"""Durability: WAL replay, snapshots, and torn-write crash recovery.

The crash model is a process dying mid-``write()``: the WAL ends in an
arbitrary byte prefix of a record. Recovery must restore *exactly* the
last generation whose commit marker made it to disk — never a partial
batch, never less than was committed.
"""

import shutil

from repro.rdf.terms import Literal, URIRef
from repro.store import QuadStore, scan_wal, snapshot_files
from repro.store.persistence import WAL_FILENAME

EX = "http://example.org/"


def _triple(i, o="x"):
    return (URIRef(f"{EX}s{i}"), URIRef(EX + "p"), Literal(o))


def _build_store(directory, batches=4, per_batch=3):
    """Commit ``batches`` multi-op generations; returns, per generation,
    (wal_bytes_after_commit, canonical_dump_after_commit)."""
    marks = []
    with QuadStore(directory) as store:
        wal_path = directory / WAL_FILENAME
        for b in range(batches):
            batch = store.batch()
            for j in range(per_batch):
                batch.insert(_triple(f"{b}_{j}", o=str(b)))
            if b == 2:  # one remove-heavy batch, for op-type coverage
                batch.remove(_triple("0_0", o="0"))
            store.commit(batch)
            marks.append(
                (store.generation, wal_path.stat().st_size,
                 store.to_nquads())
            )
    return marks


class TestReplay:
    def test_restart_replays_wal_exactly(self, tmp_path):
        marks = _build_store(tmp_path)
        final_generation, _, final_dump = marks[-1]
        with QuadStore(tmp_path) as reopened:
            assert reopened.generation == final_generation
            assert reopened.to_nquads() == final_dump
            assert reopened.recovery.clean

    def test_snapshot_plus_tail(self, tmp_path):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            store.checkpoint()
            store.insert(_triple(2))
            dump = store.to_nquads()
        with QuadStore(tmp_path) as reopened:
            assert reopened.generation == 2
            assert reopened.to_nquads() == dump
            report = reopened.recovery
            assert report.snapshot_generation == 1
            assert report.batches_replayed == 1

    def test_checkpoint_resets_wal(self, tmp_path):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            store.checkpoint()
            assert (tmp_path / WAL_FILENAME).stat().st_size == 0
            assert snapshot_files(tmp_path)

    def test_compact_prunes_old_snapshots(self, tmp_path):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            store.checkpoint()
            store.insert(_triple(2))
            store.compact()
            generations = [g for g, _ in snapshot_files(tmp_path)]
            assert generations == [2]


class TestTornTail:
    def test_truncation_sweep_recovers_last_committed_generation(
        self, tmp_path
    ):
        """Truncate the WAL at *every* byte offset: recovery must land
        on exactly the last generation whose record fits the prefix,
        byte-identical to the dump taken right after that commit."""
        source = tmp_path / "source"
        source.mkdir()
        marks = _build_store(source, batches=4, per_batch=2)
        wal_bytes = (source / WAL_FILENAME).read_bytes()

        # generation 0 is the empty store (no snapshot was written). A
        # record cut exactly before its final newline is still intact —
        # its CRC-checked commit marker is complete — so the boundary
        # for generation g is ``offset - 1``, not ``offset``.
        def expectation(length):
            generation, dump = 0, ""
            for g, offset, text in marks:
                if offset - 1 <= length:
                    generation, dump = g, text
            return generation, dump

        work = tmp_path / "work"
        for length in range(len(wal_bytes) + 1):
            if work.exists():
                shutil.rmtree(work)
            work.mkdir()
            (work / WAL_FILENAME).write_bytes(wal_bytes[:length])
            expected_generation, expected_dump = expectation(length)
            with QuadStore(work) as store:
                assert store.generation == expected_generation, (
                    f"truncated at byte {length}"
                )
                assert store.to_nquads() == expected_dump, (
                    f"truncated at byte {length}"
                )
                boundaries = {m[1] for m in marks}
                boundaries |= {m[1] - 1 for m in marks}
                if length > 0 and length not in boundaries:
                    assert store.recovery.torn_bytes > 0

    def test_recovery_truncates_the_torn_tail_durably(self, tmp_path):
        marks = _build_store(tmp_path, batches=3, per_batch=2)
        wal_path = tmp_path / WAL_FILENAME
        data = wal_path.read_bytes()
        # cut mid-way through the final record
        cut = marks[-2][1] + (marks[-1][1] - marks[-2][1]) // 2
        wal_path.write_bytes(data[:cut])

        with QuadStore(tmp_path) as store:
            assert store.generation == marks[-2][0]
            assert store.recovery.torn_bytes == cut - marks[-2][1]
        # after recovery the log is clean: a second open replays the
        # same state with nothing torn
        scan = scan_wal(wal_path)
        assert scan.torn_bytes == 0
        with QuadStore(tmp_path) as store:
            assert store.generation == marks[-2][0]
            assert store.recovery.clean

    def test_garbage_wal_recovers_empty(self, tmp_path):
        (tmp_path / WAL_FILENAME).write_bytes(b"\x00garbage\xff\n")
        with QuadStore(tmp_path) as store:
            assert store.generation == 0
            assert store.size == 0

    def test_corrupt_commit_marker_rejects_whole_batch(self, tmp_path):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            store.insert(_triple(2))
        wal_path = tmp_path / WAL_FILENAME
        lines = wal_path.read_bytes().splitlines(keepends=True)
        # flip the CRC of the *last* commit marker
        assert lines[-1].startswith(b"C ")
        lines[-1] = lines[-1][:-9] + b"deadbeef\n"
        wal_path.write_bytes(b"".join(lines))
        with QuadStore(tmp_path) as store:
            assert store.generation == 1
            assert store.size == 1

    def test_unreadable_snapshot_falls_back_to_older(self, tmp_path):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            store.checkpoint()
            store.insert(_triple(2))
            store.checkpoint()
            dump_gen1 = None
        files = dict(
            (g, p) for g, p in snapshot_files(tmp_path)
        )
        # corrupt the newest snapshot; the older one + WAL must win
        files[2].write_text("<not nquads\n", encoding="utf-8")
        with QuadStore(tmp_path) as store:
            # WAL was reset at the gen-2 checkpoint, so the older
            # snapshot alone is the best recoverable state
            assert store.generation == 1
            assert store.recovery.snapshot_generation == 1
            assert store.size == 1


class TestDirectoryFsync:
    """Regression: snapshot renames and WAL truncates fsync-ed the file
    but never the parent directory, so a power loss could roll back the
    rename/truncate itself. The sweep monkeypatches ``os.fsync`` and
    asserts a *directory* descriptor is synced on every namespace
    operation."""

    @staticmethod
    def _record_dir_fsyncs(monkeypatch):
        import os
        import stat

        calls = []
        real_fsync = os.fsync

        def recording(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording)
        return calls

    def test_checkpoint_syncs_directory_for_rename_and_reset(
        self, tmp_path, monkeypatch
    ):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
            calls = self._record_dir_fsyncs(monkeypatch)
            store.checkpoint()
        # once for the snapshot rename, once for the WAL reset
        assert len(calls) >= 2

    def test_torn_tail_truncate_syncs_directory(
        self, tmp_path, monkeypatch
    ):
        with QuadStore(tmp_path) as store:
            store.insert(_triple(1))
        wal_path = tmp_path / WAL_FILENAME
        data = wal_path.read_bytes()
        wal_path.write_bytes(data + b"B 99")  # torn header
        calls = self._record_dir_fsyncs(monkeypatch)
        with QuadStore(tmp_path) as store:
            assert store.recovery.torn_bytes > 0
        assert len(calls) >= 1  # truncate_wal synced the directory

    def test_recovery_sweep_survives_checkpoint_cycles(
        self, tmp_path, monkeypatch
    ):
        """Full sweep: commits, auto-prune-style checkpoints, torn
        tail — every namespace op paired with a directory fsync, and
        recovery restores the exact committed content."""
        calls = self._record_dir_fsyncs(monkeypatch)
        with QuadStore(tmp_path) as store:
            for i in range(6):
                store.insert(_triple(i))
                if i % 2 == 1:
                    store.checkpoint()
            dump = store.to_nquads()
        checkpoints = 3
        assert len(calls) >= 2 * checkpoints
        with QuadStore(tmp_path) as store:
            assert store.to_nquads() == dump
