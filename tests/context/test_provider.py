"""Context platform and gazetteer tests."""

import pytest

from repro.context import (
    CalendarEntry,
    ContextPlatform,
    Gazetteer,
)
from repro.lod import poi_by_key
from repro.lod.geonames import geonames_uri
from repro.sparql import Point

MOLE = Point(7.6934, 45.0692)
ROME_CENTER = Point(12.4964, 41.9028)
NEAR_MOLE = Point(7.6930, 45.0690)
TURIN_SUBURB = Point(7.62, 45.03)


class TestGazetteer:
    def test_nearest_city(self):
        gazetteer = Gazetteer()
        city, distance = gazetteer.nearest_city(MOLE)
        assert city.key == "Turin"
        assert distance < 1.0

    def test_reverse_geocode_city_country(self):
        address = Gazetteer().reverse_geocode(ROME_CENTER)
        assert address.city == "Rome"
        assert address.country == "Italy"

    def test_reverse_geocode_street_from_poi(self):
        address = Gazetteer().reverse_geocode(MOLE)
        assert address.street is not None
        assert "Mole Antonelliana" in address.street

    def test_reverse_geocode_no_street_far_from_pois(self):
        address = Gazetteer().reverse_geocode(TURIN_SUBURB)
        assert address.street is None

    def test_geonames_reference(self):
        assert Gazetteer().geonames_reference(MOLE) == geonames_uri(3165524)

    def test_nearest_poi_excludes_commercial(self):
        gazetteer = Gazetteer()
        trattoria = poi_by_key("Trattoria_Valenza")
        at_trattoria = Point(trattoria.longitude, trattoria.latitude)
        include = gazetteer.nearest_poi(at_trattoria, 0.2)
        exclude = gazetteer.nearest_poi(
            at_trattoria, 0.2, exclude_commercial=True
        )
        assert include.key == "Trattoria_Valenza"
        assert exclude is None or not exclude.commercial

    def test_search_pois_sorted_by_distance(self):
        hits = Gazetteer().search_pois(MOLE, radius_km=2.0)
        distances = [d for _, d in hits]
        assert distances == sorted(distances)
        assert hits[0][0].key == "Mole_Antonelliana"

    def test_search_pois_category_filter(self):
        hits = Gazetteer().search_pois(
            MOLE, radius_km=2.0, category="restaurant"
        )
        assert hits
        assert all(p.category == "restaurant" for p, _ in hits)

    def test_recs_id_roundtrip(self):
        gazetteer = Gazetteer()
        mole = poi_by_key("Mole_Antonelliana")
        recs_id = gazetteer.recs_id_for(mole)
        assert gazetteer.poi_by_recs_id(recs_id) == mole

    def test_recs_id_out_of_range(self):
        assert Gazetteer().poi_by_recs_id(0) is None
        assert Gazetteer().poi_by_recs_id(10_000) is None


@pytest.fixture
def platform():
    platform = ContextPlatform()
    platform.register_user("oscar", "Oscar Rodriguez")
    platform.register_user("walter", "Walter Goix")
    platform.register_user("carmen", "Carmen Criminisi")
    platform.add_friendship("oscar", "walter")
    return platform


class TestContextPlatform:
    def test_register_duplicate_rejected(self, platform):
        with pytest.raises(ValueError):
            platform.register_user("oscar")

    def test_unknown_user(self, platform):
        with pytest.raises(KeyError):
            platform.contextualize("nobody", 0)

    def test_position_at_latest_before(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.report_position("oscar", 200, ROME_CENTER)
        assert platform.position_at("oscar", 150) == MOLE
        assert platform.position_at("oscar", 250) == ROME_CENTER

    def test_position_too_old(self, platform):
        platform.report_position("oscar", 100, MOLE)
        assert platform.position_at("oscar", 100 + 7200) is None

    def test_no_position(self, platform):
        assert platform.position_at("oscar", 100) is None

    def test_contextualize_location(self, platform):
        platform.report_position("oscar", 100, MOLE)
        context = platform.contextualize("oscar", 120)
        assert context.location is not None
        assert context.location.address.city == "Turin"
        assert context.location.geonames_resource == geonames_uri(3165524)
        assert context.location.cell is not None

    def test_nearby_buddies_only_friends(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.report_position("walter", 100, NEAR_MOLE)
        platform.report_position("carmen", 100, NEAR_MOLE)  # not a friend
        context = platform.contextualize("oscar", 110)
        assert [b.username for b in context.buddies] == ["walter"]
        assert context.buddies[0].full_name == "Walter Goix"

    def test_faraway_friend_not_nearby(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.report_position("walter", 100, ROME_CENTER)
        context = platform.contextualize("oscar", 110)
        assert context.buddies == []

    def test_calendar_window(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.add_calendar_entry(
            "oscar", CalendarEntry("Cinema festival", 50, 150)
        )
        platform.add_calendar_entry(
            "oscar", CalendarEntry("Dinner", 500, 600)
        )
        context = platform.contextualize("oscar", 110)
        assert [e.title for e in context.calendar] == ["Cinema festival"]

    def test_place_label(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.label_place("oscar", MOLE, "my favourite spot", "crowded")
        context = platform.contextualize("oscar", 110)
        assert context.location.place_label == "my favourite spot"
        assert context.location.place_type == "crowded"

    def test_serving_cell_deterministic(self, platform):
        assert platform.serving_cell(MOLE) == platform.serving_cell(MOLE)
        assert platform.serving_cell(MOLE) != platform.serving_cell(
            ROME_CENTER
        )


class TestContextTags:
    def test_tags_cover_namespaces(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.report_position("walter", 100, NEAR_MOLE)
        platform.label_place("oscar", MOLE, "centro", "crowded")
        platform.add_calendar_entry(
            "oscar", CalendarEntry("Festival", 50, 150)
        )
        context = platform.contextualize("oscar", 110)
        tags = platform.context_tags(context)
        namespaces = {t.namespace for t in tags}
        assert namespaces == {
            "geo", "address", "cell", "place", "people", "event",
        }

    def test_people_tag_format_matches_paper(self, platform):
        platform.report_position("oscar", 100, MOLE)
        platform.report_position("walter", 100, NEAR_MOLE)
        context = platform.contextualize("oscar", 110)
        tags = platform.context_tags(context)
        people = [t for t in tags if t.namespace == "people"]
        assert people[0].format() == "people:fn=Walter+Goix"

    def test_no_location_no_tags(self, platform):
        context = platform.contextualize("oscar", 100)
        assert platform.context_tags(context) == []
