"""Triple-tag codec tests (the paper's §1.1 examples verbatim)."""

import pytest
from hypothesis import given, strategies as st

from repro.context import (
    TripleTag,
    TripleTagError,
    decode_value,
    encode_value,
    parse_triple_tag,
    split_tags,
    try_parse_triple_tag,
)


class TestPaperExamples:
    def test_people_fn(self):
        tag = parse_triple_tag("people:fn=Walter+Goix")
        assert tag == TripleTag("people", "fn", "Walter Goix")

    def test_cell_cgi(self):
        tag = parse_triple_tag("cell:cgi=460-0-9522-3661")
        assert tag.namespace == "cell"
        assert tag.value == "460-0-9522-3661"

    def test_place_is_crowded(self):
        tag = parse_triple_tag("place:is=crowded")
        assert tag == TripleTag("place", "is", "crowded")

    def test_poi_recs_id(self):
        tag = parse_triple_tag("poi:recs_id=72")
        assert tag.value == "72"


class TestCodec:
    def test_format_roundtrip(self):
        tag = TripleTag("people", "fn", "Walter Goix")
        assert parse_triple_tag(tag.format()) == tag

    def test_encode_reserved_characters(self):
        assert encode_value("a=b") == "a%3Db"
        assert encode_value("50%") == "50%25"
        assert encode_value("a+b") == "a%2Bb"

    def test_decode_plus(self):
        assert decode_value("Walter+Goix") == "Walter Goix"

    def test_bad_escape(self):
        with pytest.raises(TripleTagError):
            decode_value("%zz")

    def test_plain_tag_rejected(self):
        with pytest.raises(TripleTagError):
            parse_triple_tag("sunset")

    def test_missing_value_rejected(self):
        with pytest.raises(TripleTagError):
            parse_triple_tag("geo:lat")

    def test_try_parse_none(self):
        assert try_parse_triple_tag("just a tag") is None
        assert try_parse_triple_tag("geo:lat=45.07") is not None

    def test_known_namespace_flag(self):
        assert parse_triple_tag("geo:lat=1").is_known_namespace
        assert not parse_triple_tag("custom:x=1").is_known_namespace

    def test_display_friendly(self):
        assert parse_triple_tag(
            "address:city=Turin"
        ).display() == "city: Turin"

    @given(st.text(max_size=40))
    def test_value_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value


class TestSplitTags:
    def test_partition(self):
        triple, plain = split_tags(
            ["sunset", "people:fn=Walter+Goix", "mole", "place:is=crowded"]
        )
        assert [t.namespace for t in triple] == ["people", "place"]
        assert plain == ["sunset", "mole"]

    def test_empty(self):
        assert split_tags([]) == ([], [])
