"""Relational engine edge cases: NULL handling, ordering, LIKE quirks."""

import pytest

from repro.relational import Database, SchemaError, SqlSyntaxError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, s TEXT)"
    )
    database.execute(
        "INSERT INTO t (id, v, s) VALUES "
        "(1, 10, 'alpha'), (2, NULL, 'Beta'), (3, 5, NULL), "
        "(4, 10, 'gamma%')"
    )
    return database


class TestNullSemantics:
    def test_null_never_equal(self, db):
        assert len(db.execute("SELECT id FROM t WHERE v = 10")) == 2
        assert len(db.execute("SELECT id FROM t WHERE v != 10")) == 1

    def test_null_not_in_comparisons(self, db):
        assert len(db.execute("SELECT id FROM t WHERE v < 100")) == 3

    def test_order_by_nulls_first(self, db):
        result = db.execute("SELECT id FROM t ORDER BY v")
        assert [r[0] for r in result] == [2, 3, 1, 4]

    def test_update_to_null(self, db):
        db.execute("UPDATE t SET s = NULL WHERE id = 1")
        result = db.execute("SELECT id FROM t WHERE s IS NULL")
        assert {r[0] for r in result} == {1, 3}

    def test_not_null_update_rejected(self):
        from repro.relational import IntegrityError

        database = Database()
        database.execute(
            "CREATE TABLE u (id INTEGER PRIMARY KEY, name TEXT NOT NULL)"
        )
        database.execute("INSERT INTO u (id, name) VALUES (1, 'x')")
        with pytest.raises(IntegrityError):
            database.execute("UPDATE u SET name = NULL")


class TestLike:
    def test_percent_matches_anything(self, db):
        result = db.execute("SELECT id FROM t WHERE s LIKE '%a%'")
        assert {r[0] for r in result} == {1, 2, 4}

    def test_case_insensitive_like(self, db):
        assert len(db.execute("SELECT id FROM t WHERE s LIKE 'beta'")) \
            == 1

    def test_like_on_null_false(self, db):
        assert len(db.execute("SELECT id FROM t WHERE s LIKE '%'")) == 3

    def test_literal_percent_in_data(self, db):
        # regex metacharacters in the data must not break matching
        result = db.execute("SELECT id FROM t WHERE s LIKE 'gamma%'")
        assert {r[0] for r in result} == {4}


class TestOrderingMixedTypes:
    def test_text_and_null_order(self, db):
        result = db.execute("SELECT id FROM t ORDER BY s DESC")
        # NULL first ascending -> last descending
        assert result.rows[-1][0] == 3

    def test_multi_key_stability(self, db):
        result = db.execute("SELECT id FROM t ORDER BY v DESC, id ASC")
        assert [r[0] for r in result] == [1, 4, 3, 2]


class TestMisc:
    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT * FROM nope")

    def test_unknown_column_in_where(self, db):
        with pytest.raises(SchemaError):
            db.execute("SELECT id FROM t WHERE missing = 1")

    def test_scalar_requires_single_cell(self, db):
        with pytest.raises(ValueError):
            db.execute("SELECT id FROM t").scalar()

    def test_resultset_dicts(self, db):
        rows = db.execute(
            "SELECT id, v FROM t WHERE id = 1"
        ).dicts()
        assert rows == [{"id": 1, "v": 10}]

    def test_empty_in_list_is_syntax_error(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("SELECT id FROM t WHERE id IN ()")

    def test_repr(self, db):
        assert "t" in repr(db)
        assert "columns" in repr(db.execute("SELECT id FROM t"))
