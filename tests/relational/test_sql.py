"""SQL front-end tests: parsing + execution through Database.execute."""

import pytest

from repro.relational import (
    Database,
    IntegrityError,
    SchemaError,
    SqlSyntaxError,
    parse_sql,
)
from repro.relational.sql import Select


@pytest.fixture
def gallery():
    """A slice of the Coppermine-like schema the paper's platform uses."""
    db = Database("teamlife")
    db.execute(
        """CREATE TABLE users (
             user_id INTEGER PRIMARY KEY AUTOINCREMENT,
             user_name VARCHAR(60) NOT NULL UNIQUE,
             user_email TEXT
           )"""
    )
    db.execute(
        """CREATE TABLE pictures (
             pid INTEGER PRIMARY KEY AUTOINCREMENT,
             owner_id INTEGER NOT NULL REFERENCES users(user_id),
             title TEXT,
             keywords TEXT,
             rating REAL DEFAULT 0.0,
             ctime INTEGER
           )"""
    )
    db.execute(
        "INSERT INTO users (user_name, user_email) VALUES "
        "('oscar', 'oscar@example.org'), ('walter', NULL), ('carmen', NULL)"
    )
    db.execute(
        "INSERT INTO pictures (owner_id, title, keywords, rating, ctime) "
        "VALUES (1, 'Mole by night', 'mole turin night', 4.5, 100), "
        "(2, 'Piazza Castello', 'piazza turin', 3.0, 200), "
        "(2, 'Colosseum trip', 'coliseum rome', 5.0, 300)"
    )
    return db


class TestCreateInsert:
    def test_tables_created(self, gallery):
        assert set(gallery.tables) == {"users", "pictures"}

    def test_duplicate_table_rejected(self, gallery):
        with pytest.raises(SchemaError):
            gallery.execute("CREATE TABLE users (x INT)")

    def test_fk_enforced(self, gallery):
        with pytest.raises(IntegrityError):
            gallery.execute(
                "INSERT INTO pictures (owner_id, title) VALUES (99, 'x')"
            )

    def test_fk_to_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.execute(
                "CREATE TABLE t (x INT REFERENCES nope(id))"
            )

    def test_insert_arity_mismatch(self, gallery):
        with pytest.raises(SqlSyntaxError):
            gallery.execute(
                "INSERT INTO users (user_name) VALUES ('a', 'b')"
            )

    def test_string_escape(self, gallery):
        gallery.execute(
            "INSERT INTO users (user_name) VALUES ('O''Brien')"
        )
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_name LIKE 'O''%'"
        )
        assert result.rows == [("O'Brien",)]


class TestSelect:
    def test_select_star(self, gallery):
        result = gallery.execute("SELECT * FROM users")
        assert result.columns == ["user_id", "user_name", "user_email"]
        assert len(result) == 3

    def test_select_columns(self, gallery):
        result = gallery.execute(
            "SELECT title, rating FROM pictures ORDER BY rating DESC"
        )
        assert result.rows[0] == ("Colosseum trip", 5.0)

    def test_where_comparison(self, gallery):
        result = gallery.execute(
            "SELECT pid FROM pictures WHERE rating >= 4.0"
        )
        assert len(result) == 2

    def test_where_and_or(self, gallery):
        result = gallery.execute(
            "SELECT pid FROM pictures WHERE rating > 4 OR "
            "(owner_id = 2 AND rating >= 3)"
        )
        assert len(result) == 3

    def test_where_not(self, gallery):
        result = gallery.execute(
            "SELECT pid FROM pictures WHERE NOT owner_id = 2"
        )
        assert len(result) == 1

    def test_like(self, gallery):
        result = gallery.execute(
            "SELECT title FROM pictures WHERE keywords LIKE '%turin%'"
        )
        assert len(result) == 2

    def test_like_underscore(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_name LIKE '_scar'"
        )
        assert result.rows == [("oscar",)]

    def test_in_list(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_id IN (1, 3)"
        )
        assert {r[0] for r in result} == {"oscar", "carmen"}

    def test_not_in_list(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_id NOT IN (1, 3)"
        )
        assert result.rows == [("walter",)]

    def test_is_null(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_email IS NULL "
            "ORDER BY user_name"
        )
        assert [r[0] for r in result] == ["carmen", "walter"]

    def test_is_not_null(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_email IS NOT NULL"
        )
        assert result.rows == [("oscar",)]

    def test_null_comparison_is_false(self, gallery):
        result = gallery.execute(
            "SELECT user_name FROM users WHERE user_email = 'x'"
        )
        assert len(result) == 0

    def test_order_by_multi(self, gallery):
        result = gallery.execute(
            "SELECT owner_id, rating FROM pictures "
            "ORDER BY owner_id ASC, rating DESC"
        )
        assert result.rows == [(1, 4.5), (2, 5.0), (2, 3.0)]

    def test_limit_offset(self, gallery):
        result = gallery.execute(
            "SELECT pid FROM pictures ORDER BY pid LIMIT 1 OFFSET 1"
        )
        assert result.rows == [(2,)]

    def test_distinct(self, gallery):
        result = gallery.execute("SELECT DISTINCT owner_id FROM pictures")
        assert len(result) == 2

    def test_count_star(self, gallery):
        result = gallery.execute("SELECT COUNT(*) FROM pictures")
        assert result.scalar() == 3

    def test_count_column_skips_null(self, gallery):
        result = gallery.execute("SELECT COUNT(user_email) FROM users")
        assert result.scalar() == 1

    def test_alias_in_projection(self, gallery):
        result = gallery.execute(
            "SELECT user_name AS name FROM users WHERE user_id = 1"
        )
        assert result.columns == ["name"]
        assert result.dicts() == [{"name": "oscar"}]


class TestJoins:
    def test_inner_join(self, gallery):
        result = gallery.execute(
            "SELECT users.user_name, pictures.title FROM pictures "
            "JOIN users ON pictures.owner_id = users.user_id "
            "ORDER BY pictures.pid"
        )
        assert result.rows[0] == ("oscar", "Mole by night")
        assert len(result) == 3

    def test_join_with_aliases(self, gallery):
        result = gallery.execute(
            "SELECT u.user_name FROM pictures p "
            "JOIN users u ON p.owner_id = u.user_id WHERE p.rating = 5.0"
        )
        assert result.rows == [("walter",)]

    def test_left_join_keeps_unmatched(self, gallery):
        result = gallery.execute(
            "SELECT u.user_name, p.pid FROM users u "
            "LEFT JOIN pictures p ON u.user_id = p.owner_id "
            "WHERE p.pid IS NULL"
        )
        assert result.rows == [("carmen", None)]

    def test_join_qualified_star(self, gallery):
        result = gallery.execute(
            "SELECT u.* FROM users u "
            "JOIN pictures p ON u.user_id = p.owner_id WHERE p.pid = 1"
        )
        assert result.columns == ["user_id", "user_name", "user_email"]

    def test_ambiguous_column_rejected(self, gallery):
        gallery.execute(
            "CREATE TABLE tags (pid INTEGER, title TEXT)"
        )
        with pytest.raises(SchemaError):
            gallery.execute(
                "SELECT title FROM pictures p JOIN tags t ON p.pid = t.pid"
            )


class TestUpdateDelete:
    def test_update(self, gallery):
        gallery.execute(
            "UPDATE pictures SET rating = 1.0 WHERE owner_id = 2"
        )
        result = gallery.execute(
            "SELECT COUNT(*) FROM pictures WHERE rating = 1.0"
        )
        assert result.scalar() == 2

    def test_delete(self, gallery):
        gallery.execute("DELETE FROM pictures WHERE rating < 4")
        assert len(gallery.table("pictures")) == 2

    def test_delete_all(self, gallery):
        gallery.execute("DELETE FROM pictures")
        assert len(gallery.table("pictures")) == 0


class TestParser:
    def test_parse_select_ast(self):
        statement = parse_sql(
            "SELECT a, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 5"
        )
        assert isinstance(statement, Select)
        assert statement.limit == 5
        assert statement.order_by[0][1] is True

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT a FROM t nonsense extra")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("DROP TABLE t")

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT @ FROM t")

    def test_semicolon_accepted(self):
        statement = parse_sql("SELECT a FROM t;")
        assert isinstance(statement, Select)
