"""Snapshot transaction tests."""

import pytest

from repro.relational import Database, IntegrityError


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT "
        "UNIQUE)"
    )
    database.execute("INSERT INTO t (v) VALUES ('one'), ('two')")
    return database


class TestCommit:
    def test_clean_exit_commits(self, db):
        with db.transaction():
            db.execute("INSERT INTO t (v) VALUES ('three')")
        assert len(db.table("t")) == 3


class TestRollback:
    def test_insert_rolled_back(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t (v) VALUES ('three')")
                raise RuntimeError("abort")
        assert len(db.table("t")) == 2
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE v = 'three'"
        ).scalar() == 0

    def test_update_and_delete_rolled_back(self, db):
        with pytest.raises(ValueError):
            with db.transaction():
                db.execute("UPDATE t SET v = 'changed' WHERE id = 1")
                db.execute("DELETE FROM t WHERE id = 2")
                raise ValueError("abort")
        rows = db.execute("SELECT v FROM t ORDER BY id").rows
        assert rows == [("one",), ("two",)]

    def test_autoincrement_restored(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("INSERT INTO t (v) VALUES ('x')")  # id 3
                raise RuntimeError("abort")
        row = db.insert("t", v="after")
        assert row["id"] == 3  # counter rolled back too

    def test_unique_index_restored(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("DELETE FROM t WHERE v = 'one'")
                raise RuntimeError("abort")
        # 'one' is back, so re-inserting it must violate uniqueness
        with pytest.raises(IntegrityError):
            db.insert("t", v="one")

    def test_created_table_dropped_on_rollback(self, db):
        from repro.relational import SchemaError

        with pytest.raises(RuntimeError):
            with db.transaction():
                db.execute("CREATE TABLE fresh (id INTEGER PRIMARY KEY)")
                raise RuntimeError("abort")
        with pytest.raises(SchemaError):
            db.table("fresh")

    def test_integrity_error_inside_transaction(self, db):
        with pytest.raises(IntegrityError):
            with db.transaction():
                db.execute("INSERT INTO t (v) VALUES ('new')")
                db.execute("INSERT INTO t (v) VALUES ('one')")  # dup
        # the whole scope rolled back, including the first insert
        assert len(db.table("t")) == 2

    def test_nested_scopes(self, db):
        with db.transaction():
            db.execute("INSERT INTO t (v) VALUES ('outer')")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.execute("INSERT INTO t (v) VALUES ('inner')")
                    raise RuntimeError("abort inner")
            # inner rolled back, outer insert survives
            assert db.execute(
                "SELECT COUNT(*) FROM t WHERE v = 'inner'"
            ).scalar() == 0
        assert db.execute(
            "SELECT COUNT(*) FROM t WHERE v = 'outer'"
        ).scalar() == 1
