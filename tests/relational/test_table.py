"""Table/column storage-layer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.relational import (
    Column,
    ColumnType,
    IntegrityError,
    SchemaError,
    Table,
    TypeMismatchError,
)


def make_users_table():
    return Table(
        "users",
        [
            Column("user_id", ColumnType.INTEGER, primary_key=True,
                   autoincrement=True),
            Column("user_name", ColumnType.TEXT, nullable=False,
                   unique=True),
            Column("user_email", ColumnType.TEXT),
            Column("active", ColumnType.BOOLEAN, default=True),
        ],
    )


class TestColumnType:
    def test_from_sql_aliases(self):
        assert ColumnType.from_sql("INT") is ColumnType.INTEGER
        assert ColumnType.from_sql("varchar(255)") is ColumnType.TEXT
        assert ColumnType.from_sql("DOUBLE") is ColumnType.REAL
        assert ColumnType.from_sql("datetime") is ColumnType.TIMESTAMP

    def test_from_sql_unknown(self):
        with pytest.raises(SchemaError):
            ColumnType.from_sql("BLOB")

    def test_integer_coerce(self):
        assert ColumnType.INTEGER.coerce(5) == 5
        assert ColumnType.INTEGER.coerce("7") == 7

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INTEGER.coerce(True)

    def test_integer_rejects_text(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INTEGER.coerce("abc")

    def test_real_coerce(self):
        assert ColumnType.REAL.coerce(3) == 3.0
        assert ColumnType.REAL.coerce("2.5") == 2.5

    def test_text_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.TEXT.coerce(5)

    def test_boolean_accepts_01(self):
        assert ColumnType.BOOLEAN.coerce(1) is True
        assert ColumnType.BOOLEAN.coerce(0) is False

    def test_none_passthrough(self):
        assert ColumnType.TEXT.coerce(None) is None

    def test_timestamp_accepts_epoch_and_iso(self):
        assert ColumnType.TIMESTAMP.coerce(1325376000) == 1325376000
        assert ColumnType.TIMESTAMP.coerce("2012-01-01T00:00:00") \
            == "2012-01-01T00:00:00"


class TestSchemaValidation:
    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a", ColumnType.TEXT),
                        Column("a", ColumnType.INTEGER)])

    def test_multiple_pks_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [
                Column("a", ColumnType.INTEGER, primary_key=True),
                Column("b", ColumnType.INTEGER, primary_key=True),
            ])

    def test_unknown_column_lookup(self):
        table = make_users_table()
        with pytest.raises(SchemaError):
            table.column("nope")


class TestInsert:
    def test_autoincrement(self):
        table = make_users_table()
        row1 = table.insert({"user_name": "oscar"})
        row2 = table.insert({"user_name": "walter"})
        assert row1["user_id"] == 1
        assert row2["user_id"] == 2

    def test_autoincrement_respects_explicit_values(self):
        table = make_users_table()
        table.insert({"user_id": 10, "user_name": "oscar"})
        row = table.insert({"user_name": "walter"})
        assert row["user_id"] == 11

    def test_default_applied(self):
        table = make_users_table()
        row = table.insert({"user_name": "oscar"})
        assert row["active"] is True

    def test_pk_duplicate_rejected(self):
        table = make_users_table()
        table.insert({"user_id": 1, "user_name": "oscar"})
        with pytest.raises(IntegrityError):
            table.insert({"user_id": 1, "user_name": "walter"})

    def test_unique_violation(self):
        table = make_users_table()
        table.insert({"user_name": "oscar"})
        with pytest.raises(IntegrityError):
            table.insert({"user_name": "oscar"})

    def test_not_null_enforced(self):
        table = make_users_table()
        with pytest.raises(IntegrityError):
            table.insert({"user_email": "x@y.z"})

    def test_unknown_column_rejected(self):
        table = make_users_table()
        with pytest.raises(SchemaError):
            table.insert({"user_name": "oscar", "bogus": 1})

    def test_type_checked(self):
        table = make_users_table()
        with pytest.raises(TypeMismatchError):
            table.insert({"user_name": 42})

    def test_returned_row_is_copy(self):
        table = make_users_table()
        row = table.insert({"user_name": "oscar"})
        row["user_name"] = "mutated"
        assert table.get(row["user_id"])["user_name"] == "oscar"


class TestAccess:
    def test_get_by_pk(self):
        table = make_users_table()
        table.insert({"user_name": "oscar"})
        assert table.get(1)["user_name"] == "oscar"
        assert table.get(99) is None

    def test_scan_order(self):
        table = make_users_table()
        for name in ("a", "b", "c"):
            table.insert({"user_name": name})
        assert [r["user_name"] for r in table.scan()] == ["a", "b", "c"]

    def test_len(self):
        table = make_users_table()
        table.insert({"user_name": "a"})
        assert len(table) == 1


class TestDeleteUpdate:
    def test_delete_where(self):
        table = make_users_table()
        for name in ("a", "b", "c"):
            table.insert({"user_name": name})
        removed = table.delete_where(lambda r: r["user_name"] != "b")
        assert removed == 2
        assert len(table) == 1

    def test_delete_frees_pk(self):
        table = make_users_table()
        table.insert({"user_id": 1, "user_name": "a"})
        table.delete_where(lambda r: True)
        table.insert({"user_id": 1, "user_name": "b"})  # no IntegrityError
        assert table.get(1)["user_name"] == "b"

    def test_delete_frees_unique(self):
        table = make_users_table()
        table.insert({"user_name": "a"})
        table.delete_where(lambda r: True)
        table.insert({"user_name": "a"})
        assert len(table) == 1

    def test_update_where(self):
        table = make_users_table()
        table.insert({"user_name": "a", "user_email": "old"})
        count = table.update_where(
            lambda r: r["user_name"] == "a", {"user_email": "new"}
        )
        assert count == 1
        assert table.get(1)["user_email"] == "new"

    def test_update_pk_rejected(self):
        table = make_users_table()
        table.insert({"user_name": "a"})
        with pytest.raises(IntegrityError):
            table.update_where(lambda r: True, {"user_id": 5})

    def test_update_unique_conflict(self):
        table = make_users_table()
        table.insert({"user_name": "a"})
        table.insert({"user_name": "b"})
        with pytest.raises(IntegrityError):
            table.update_where(
                lambda r: r["user_name"] == "b", {"user_name": "a"}
            )

    def test_update_unique_same_row_ok(self):
        table = make_users_table()
        table.insert({"user_name": "a"})
        table.update_where(lambda r: True, {"user_name": "a"})
        assert len(table) == 1


@given(st.lists(st.integers(0, 50), unique=True, max_size=30))
def test_pk_index_consistent_after_inserts(pks):
    table = Table(
        "t",
        [Column("id", ColumnType.INTEGER, primary_key=True),
         Column("v", ColumnType.INTEGER)],
    )
    for pk in pks:
        table.insert({"id": pk, "v": pk * 2})
    for pk in pks:
        assert table.get(pk) == {"id": pk, "v": pk * 2}
    assert len(table) == len(pks)
