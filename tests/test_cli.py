"""CLI tests (run in-process through main())."""

import json

import pytest

from repro.cli import main


class TestAnnotate:
    def test_annotate_title(self, capsys):
        assert main(
            ["annotate", "Tramonto sulla Mole Antonelliana"]
        ) == 0
        out = capsys.readouterr().out
        assert "language : it" in out
        assert "Mole_Antonelliana" in out

    def test_annotate_with_tags(self, capsys):
        assert main(["annotate", "a view", "--tags", "Coliseum"]) == 0
        out = capsys.readouterr().out
        assert "Colosseum" in out

    def test_annotate_lang_override(self, capsys):
        assert main(["annotate", "Torino", "--lang", "it"]) == 0
        assert "language : it" in capsys.readouterr().out


class TestAnnotateBatch:
    def test_parallel_report(self, capsys):
        assert main([
            "annotate-batch", "--contents", "20",
            "--workers", "2", "--batch-size", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "catalog   : 20 item(s), 2 worker(s)" in out
        assert "processed : 20" in out
        assert "failed: 0" in out
        assert "cache" in out
        assert "resolver" in out

    def test_fault_injection_degrades_not_fails(self, capsys):
        assert main([
            "annotate-batch", "--contents", "15",
            "--workers", "2", "--fail", "dbpedia",
        ]) == 0
        out = capsys.readouterr().out
        assert "failed: 0" in out
        assert "degraded  : 15 item(s)" in out

    def test_sequential_without_resilience(self, capsys):
        assert main([
            "annotate-batch", "--contents", "10",
            "--workers", "1", "--no-resilience",
        ]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "cache" not in out  # no resilience layer, no counters

    def test_unknown_failing_resolver_exits_2(self, capsys):
        assert main([
            "annotate-batch", "--contents", "5", "--fail", "nope",
        ]) == 2
        assert "unknown resolver" in capsys.readouterr().err

    def test_bad_failure_rate_exits_2(self, capsys):
        assert main([
            "annotate-batch", "--contents", "5",
            "--fail", "dbpedia:high",
        ]) == 2
        assert "bad failure rate" in capsys.readouterr().err

    def test_invalid_contents_exits_2(self, capsys):
        assert main(["annotate-batch", "--contents", "0"]) == 2
        assert "--contents" in capsys.readouterr().err


class TestDetect:
    def test_detect(self, capsys):
        assert main(
            ["detect", "una bellissima passeggiata stasera"]
        ) == 0
        assert capsys.readouterr().out.startswith("it ")


class TestQuery:
    NT = (
        '<http://x/s> <http://x/p> "hello" .\n'
        "<http://x/s> <http://x/q> <http://x/o> .\n"
    )

    def test_select(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main(
            ["query", str(data),
             "SELECT ?o WHERE { <http://x/s> <http://x/p> ?o }"]
        ) == 0
        out = capsys.readouterr().out
        assert "hello" in out
        assert "(1 row(s))" in out

    def test_ask(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main(["query", str(data), "ASK { ?s ?p ?o }"]) == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_construct(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main(
            ["query", str(data),
             "CONSTRUCT { ?s <http://x/new> ?o } "
             "WHERE { ?s <http://x/q> ?o }"]
        ) == 0
        assert "<http://x/new>" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(
            ["query", "/no/such/file.nt", "ASK { ?s ?p ?o }"]
        ) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(self.NT))
        assert main(["query", "-", "ASK { ?s ?p ?o }"]) == 0
        assert capsys.readouterr().out.strip() == "yes"


class TestDumpAndDemo:
    def test_dump_is_loadable_ntriples(self, capsys):
        from repro.rdf import load_ntriples

        assert main(["dump"]) == 0
        out = capsys.readouterr().out
        graph = load_ntriples(out)
        assert len(graph) > 10

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Mole" in out


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestLintSeverity:
    # every lint mode funnels through one driver, so the severity
    # parse error must behave identically regardless of the mode
    @pytest.mark.parametrize("mode", [
        "--queries", "--mapping", "--self-check", "--concurrency",
    ])
    def test_unknown_severity_exits_2(self, capsys, mode):
        assert main(
            ["lint", mode, "--min-severity", "blocker"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown severity 'blocker'" in err
        assert "info, warning, error" in err

    def test_known_severity_accepted(self, capsys):
        assert main(
            ["lint", "--queries", "--min-severity", "error"]
        ) == 0
        assert "diagnostic(s)" in capsys.readouterr().out

    def test_nothing_to_lint_exits_2(self, capsys):
        assert main(["lint"]) == 2
        err = capsys.readouterr().err
        assert "nothing to lint" in err
        assert "--concurrency" in err


CC_DIRTY = """\
import threading
import time

LOCK = threading.Lock()


def slow_section():
    with LOCK:
        time.sleep(0.1)
"""


class TestLintConcurrency:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", "--concurrency", str(target)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_dirty_file_exits_1(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(CC_DIRTY)
        assert main(["lint", "--concurrency", str(target)]) == 1
        out = capsys.readouterr().out
        assert "CC003" in out

    def test_min_severity_filters_display_not_exit_code(
        self, tmp_path, capsys
    ):
        # exit code reflects *all* collected errors, not just the shown
        # slice — consistent with --queries/--mapping behavior
        target = tmp_path / "dirty.py"
        target.write_text(CC_DIRTY)
        assert main([
            "lint", "--concurrency", str(target),
            "--min-severity", "error",
        ]) == 1
        out = capsys.readouterr().out
        assert "CC003" in out

    def test_repro_package_default_target_is_clean(self, capsys):
        # the checked-in baseline: linting the package itself is clean
        assert main(["lint", "--concurrency"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_json_output_to_stdout(self, tmp_path, capsys):
        import json

        from repro.analysis import CATALOG_VERSION

        target = tmp_path / "dirty.py"
        target.write_text(CC_DIRTY)
        assert main([
            "lint", "--concurrency", str(target), "--json", "-",
        ]) == 1
        out = capsys.readouterr().out
        start, end = out.index("{"), out.rindex("}") + 1
        envelope = json.loads(out[start:end])
        assert envelope["catalog"] == CATALOG_VERSION
        payload = envelope["diagnostics"]
        assert any(entry["rule"] == "CC003" for entry in payload)
        entry = payload[0]
        assert set(entry) == {
            "rule", "severity", "message", "source", "line", "span",
            "suggestion",
        }

    def test_json_output_to_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "dirty.py"
        target.write_text(CC_DIRTY)
        report = tmp_path / "report.json"
        assert main([
            "lint", "--concurrency", str(target),
            "--json", str(report),
        ]) == 1
        capsys.readouterr()
        envelope = json.loads(report.read_text())
        payload = envelope["diagnostics"]
        assert payload and payload[0]["severity"] == "error"

    def test_json_output_is_sorted_deterministically(
        self, tmp_path, capsys
    ):
        import json

        target = tmp_path / "dirty.py"
        target.write_text(CC_DIRTY)
        assert main([
            "lint", "--concurrency", "--effects", str(target),
            "--json", "-",
        ]) == 1
        out = capsys.readouterr().out
        start, end = out.index("{"), out.rindex("}") + 1
        payload = json.loads(out[start:end])["diagnostics"]

        def key(entry):
            line = entry["line"]
            if line is None:
                line = entry["span"][0] if entry["span"] else 0
            return (
                entry["source"] or "", line, entry["rule"],
                entry["message"],
            )

        assert [key(e) for e in payload] == sorted(
            key(e) for e in payload
        )


EF_DIRTY = """\
def poke(graph):
    graph._spo.clear()
"""

EF_WARN_ONLY = """\
def build(graph):
    graph.add((1, 2, 3))
"""


class TestLintEffects:
    def test_clean_file_exits_0(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", "--effects", str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_dirty_file_exits_1(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text(EF_DIRTY)
        assert main(["lint", "--effects", str(target)]) == 1
        assert "EF001" in capsys.readouterr().out

    def test_repro_package_default_target_is_clean(self, capsys):
        # the checked-in baseline: the package's own store discipline
        # is clean under its analyzer, warnings included
        assert main([
            "lint", "--effects", "--fail-on", "warning",
        ]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_fail_on_warning_promotes_exit_code(self, tmp_path, capsys):
        target = tmp_path / "warn.py"
        target.write_text(EF_WARN_ONLY)
        # EF006 (missing Graph-writes contract) is a warning: exit 0
        # under the default policy, 1 under --fail-on warning
        assert main(["lint", "--effects", str(target)]) == 0
        out = capsys.readouterr().out
        assert "EF006" in out
        assert main([
            "lint", "--effects", str(target), "--fail-on", "warning",
        ]) == 1

    def test_unknown_fail_on_exits_2(self, capsys):
        assert main([
            "lint", "--effects", "--fail-on", "fatal",
        ]) == 2
        assert "unknown severity" in capsys.readouterr().err


class TestSanitize:
    def test_smoke_run_exits_0(self, capsys):
        assert main([
            "sanitize", "--contents", "10",
            "--workers", "2", "--batch-size", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "processed : 10" in out
        assert "inversions" in out

    def test_store_smoke_run_exits_0(self, capsys):
        assert main([
            "sanitize", "--store", "--contents", "10",
            "--workers", "2", "--batch-size", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "iter mutations" in out
        assert "contract violations: 0" in out

    def test_invalid_workers_exits_2(self, capsys):
        assert main(["sanitize", "--workers", "0"]) == 2
        assert "positive" in capsys.readouterr().err


class TestExplain:
    NT = (
        '<http://x/a> <http://xmlns.com/foaf/0.1/name> "ada" .\n'
        '<http://x/a> <http://purl.org/stuff/rev#rating> '
        '"4"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
    )

    def test_explain_raw_query_over_file(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main([
            "explain",
            "SELECT ?s WHERE { ?s rev:rating ?r . FILTER(?r > 3) }",
            "--file", str(data),
        ]) == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "est=" in out
        assert "actual=" in out
        assert "rows: 1" in out

    def test_explain_builtin_no_exec(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main([
            "explain", "Q1", "--file", str(data), "--no-exec"
        ]) == 0
        out = capsys.readouterr().out
        assert "== plan for Q1 ==" in out
        assert "actual=" not in out

    def test_explain_query_file(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        rq = tmp_path / "q.rq"
        rq.write_text("SELECT ?s WHERE { ?s foaf:name ?n }")
        assert main([
            "explain", str(rq), "--file", str(data)
        ]) == 0
        assert "rows: 1" in capsys.readouterr().out

    def test_explain_missing_query_file(self, capsys):
        assert main(["explain", "@/nonexistent/q.rq"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_explain_syntax_error(self, tmp_path, capsys):
        data = tmp_path / "data.nt"
        data.write_text(self.NT)
        assert main([
            "explain", "SELECT WHERE {", "--file", str(data)
        ]) == 2
        assert "error" in capsys.readouterr().err


class TestObsLoadgen:
    def test_schedule_only_is_deterministic(self, capsys):
        assert main([
            "obs", "loadgen", "--mix", "default", "--seed", "7",
            "--ops", "40", "--schedule-only",
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "obs", "loadgen", "--mix", "default", "--seed", "7",
            "--ops", "40", "--schedule-only",
        ]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "schedule digest:" in first

    def test_unknown_mix_exits_2(self, capsys):
        assert main([
            "obs", "loadgen", "--mix", "bogus", "--schedule-only",
        ]) == 2
        assert "unknown mix" in capsys.readouterr().err

    def test_run_with_slo_and_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        report = tmp_path / "slo.json"
        assert main([
            "obs", "loadgen", "--mix", "default", "--seed", "7",
            "--ops", "32", "--workers", "2", "--base-contents", "10",
            "--slo", "--report", str(report),
            "--save-metrics", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "load run:" in out and "SLO" in out
        saved = json.loads(report.read_text())
        assert saved["passed"] is True
        bundle = json.loads(metrics.read_text())
        assert "repro_loadgen_op_seconds" in bundle["metrics"]

    def test_slo_verb_reads_saved_bundle(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main([
            "obs", "loadgen", "--seed", "7", "--ops", "32",
            "--workers", "2", "--base-contents", "10",
            "--save-metrics", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert main(["obs", "slo", "--input", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_slo_verb_missing_input_exits_2(self, capsys):
        assert main([
            "obs", "slo", "--input", "/nonexistent/metrics.json",
        ]) == 2
        assert capsys.readouterr().err

    def test_health_smoke(self, capsys):
        assert main(["obs", "health", "--seed", "7"]) == 0
        assert "healthy" in capsys.readouterr().out
