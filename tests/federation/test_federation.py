"""Federation tests: the §6 future-work architecture end to end."""

import pytest

from repro.federation import (
    Activity,
    ActivityError,
    Federation,
    Hub,
    KeyDirectory,
    PhotoFrame,
    PubSubError,
    SalmonError,
    Slap,
    Timeline,
    WebFingerError,
    merge_timelines,
    parse_account,
    sign_slap,
    verify_envelope,
)
from repro.rdf import FOAF, Literal, URIRef


@pytest.fixture
def federation():
    fed = Federation()
    rossi = fed.create_node("rossi.example.net", b"rossi-key")
    rossi.add_member("oscar", "Oscar Rossi")
    rossi.add_member("anna", "Anna Rossi")
    goix = fed.create_node("goix.example.org", b"goix-key")
    goix.add_member("walter", "Walter Goix")
    return fed, rossi, goix


class TestWebFinger:
    def test_parse_account(self):
        account = parse_account("acct:oscar@Rossi.example.NET")
        assert account.user == "oscar"
        assert account.domain == "rossi.example.net"
        assert account.acct == "acct:oscar@rossi.example.net"

    def test_parse_without_scheme(self):
        assert parse_account("walter@goix.example.org").user == "walter"

    def test_parse_invalid(self):
        with pytest.raises(WebFingerError):
            parse_account("not an account")

    def test_lookup(self, federation):
        fed, _, _ = federation
        descriptor = fed.directory.lookup("acct:oscar@rossi.example.net")
        assert descriptor.subject == "acct:oscar@rossi.example.net"
        assert "foaf" in descriptor.links["describedby"]
        assert descriptor.properties["name"] == "Oscar Rossi"

    def test_lookup_unknown_user(self, federation):
        fed, _, _ = federation
        with pytest.raises(WebFingerError):
            fed.directory.lookup("acct:nobody@rossi.example.net")

    def test_lookup_unknown_domain(self, federation):
        fed, _, _ = federation
        with pytest.raises(WebFingerError):
            fed.directory.lookup("acct:x@nowhere.example")

    def test_validate(self, federation):
        fed, _, _ = federation
        assert fed.directory.validate("acct:walter@goix.example.org")
        assert not fed.directory.validate("acct:zz@goix.example.org")

    def test_duplicate_domain_rejected(self, federation):
        fed, _, _ = federation
        with pytest.raises(WebFingerError):
            fed.create_node("rossi.example.net", b"k")


class TestActivityStreams:
    def test_verb_validation(self):
        with pytest.raises(ActivityError):
            Activity(actor="a", verb="explode", object_id="x")

    def test_json_roundtrip(self):
        activity = Activity(
            actor="acct:o@d", verb="post", object_id="http://x/1",
            published=100, summary="hello",
        )
        assert Activity.from_json(activity.to_json()) == activity

    def test_malformed_json(self):
        with pytest.raises(ActivityError):
            Activity.from_json({"verb": "post"})

    def test_timeline_newest_first(self):
        timeline = Timeline("o")
        timeline.push(Activity("a", "post", "1", published=10))
        timeline.push(Activity("a", "post", "2", published=30))
        timeline.push(Activity("a", "post", "3", published=20))
        assert [a.object_id for a in timeline.entries()] == ["2", "3", "1"]

    def test_merge_timelines(self):
        t1, t2 = Timeline("a"), Timeline("b")
        t1.push(Activity("a", "post", "1", published=10))
        t2.push(Activity("b", "post", "2", published=20))
        merged = merge_timelines([t1, t2])
        assert [a.object_id for a in merged] == ["2", "1"]

    def test_merge_limit(self):
        t = Timeline("a")
        for i in range(5):
            t.push(Activity("a", "post", str(i), published=i))
        assert len(merge_timelines([t], limit=2)) == 2


class TestPubSub:
    def test_subscribe_requires_verification(self):
        hub = Hub()
        received = []
        hub.subscribe("s1", "topic", lambda t, p: received.append(p))
        # not verified yet: publish reaches nobody
        assert hub.publish("topic", {"x": 1}) == 0

    def test_challenge_echo(self):
        hub = Hub()
        received = []
        challenge = hub.subscribe(
            "s1", "topic", lambda t, p: received.append(p)
        )
        hub.verify(challenge, challenge)
        assert hub.publish("topic", {"x": 1}) == 1
        assert received == [{"x": 1}]

    def test_bad_challenge(self):
        hub = Hub()
        challenge = hub.subscribe("s1", "t", lambda t, p: None)
        with pytest.raises(PubSubError):
            hub.verify(challenge, "wrong")

    def test_unknown_challenge(self):
        hub = Hub()
        with pytest.raises(PubSubError):
            hub.verify("nope", "nope")

    def test_unsubscribe(self):
        hub = Hub()
        hub.subscribe("s1", "t", lambda t, p: None,
                      verify=lambda c: c)
        assert hub.unsubscribe("s1", "t")
        assert not hub.unsubscribe("s1", "t")
        assert hub.publish("t", {}) == 0

    def test_delivery_log(self):
        hub = Hub()
        hub.subscribe("s1", "t", lambda t, p: None, verify=lambda c: c)
        hub.publish("t", {})
        assert hub.delivery_log == [("t", "s1")]


class TestSalmon:
    def test_sign_and_verify(self):
        keys = KeyDirectory()
        keys.register("d.example", b"secret")
        slap = Slap("acct:u@d.example", "https://x/1", "nice!", 10)
        envelope = sign_slap(slap, "d.example", keys)
        assert verify_envelope(envelope, keys) == slap

    def test_tampered_content_rejected(self):
        from dataclasses import replace

        keys = KeyDirectory()
        keys.register("d.example", b"secret")
        slap = Slap("acct:u@d.example", "https://x/1", "nice!", 10)
        envelope = sign_slap(slap, "d.example", keys)
        tampered = replace(
            envelope, slap=replace(slap, content="evil")
        )
        with pytest.raises(SalmonError):
            verify_envelope(tampered, keys)

    def test_cross_domain_author_rejected(self):
        keys = KeyDirectory()
        keys.register("other.example", b"k2")
        slap = Slap("acct:u@d.example", "https://x/1", "hello", 10)
        envelope = sign_slap(slap, "other.example", keys)
        with pytest.raises(SalmonError):
            verify_envelope(envelope, keys)

    def test_unknown_domain(self):
        keys = KeyDirectory()
        slap = Slap("acct:u@d.example", "https://x/1", "hello", 10)
        with pytest.raises(SalmonError):
            sign_slap(slap, "d.example", keys)


class TestFederatedScenario:
    def test_publish_appears_on_own_timeline(self, federation):
        _, rossi, _ = federation
        rossi.publish("oscar", "Mole at night", "http://cdn/1.jpg", 100)
        entries = rossi.timeline("oscar").entries()
        assert len(entries) == 1
        assert entries[0].summary == "Mole at night"

    def test_follow_delivers_near_instant(self, federation):
        _, rossi, goix = federation
        rossi.follow("oscar", "acct:walter@goix.example.org")
        goix.publish("walter", "Holiday pic", "http://cdn/w1.jpg", 200)
        home = rossi.home_timeline()
        assert any(a.object_id.endswith("/content/1") for a in home)

    def test_follow_unknown_account_rejected(self, federation):
        _, rossi, _ = federation
        with pytest.raises(WebFingerError):
            rossi.follow("oscar", "acct:ghost@goix.example.org")

    def test_home_timeline_merges_local_and_remote(self, federation):
        _, rossi, goix = federation
        rossi.follow("anna", "acct:walter@goix.example.org")
        rossi.publish("oscar", "local", "http://cdn/l.jpg", 100)
        goix.publish("walter", "remote", "http://cdn/r.jpg", 300)
        home = rossi.home_timeline()
        assert [a.summary for a in home] == ["remote", "local"]

    def test_salmon_comment_swims_upstream(self, federation):
        _, rossi, goix = federation
        content = goix.publish(
            "walter", "Holiday pic", "http://cdn/w1.jpg", 200
        )
        rossi.comment("oscar", content.url, "bellissima!", 250)
        stored = goix.content(content.url).comments
        assert len(stored) == 1
        assert stored[0].author == "acct:oscar@rossi.example.net"

    def test_salmon_to_missing_content(self, federation):
        _, rossi, goix = federation
        with pytest.raises(SalmonError):
            rossi.comment(
                "oscar", "https://goix.example.org/content/99", "x", 1
            )

    def test_foaf_graph_includes_remote_knows(self, federation):
        _, rossi, _ = federation
        rossi.follow("oscar", "acct:walter@goix.example.org")
        g = rossi.foaf_graph()
        person = URIRef("https://rossi.example.net/people/oscar")
        assert (person, FOAF.name, Literal("Oscar Rossi")) in g
        assert (
            person, FOAF.knows,
            URIRef("acct:walter@goix.example.org"),
        ) in g

    def test_oembed(self, federation):
        _, rossi, _ = federation
        content = rossi.publish(
            "oscar", "Mole at night", "http://cdn/1.jpg", 100
        )
        doc = rossi.oembed(content.url)
        assert doc["type"] == "photo"
        assert doc["url"] == "http://cdn/1.jpg"
        assert doc["provider_name"] == "rossi.example.net"
        assert "<img" in doc["html"]

    def test_oembed_unknown(self, federation):
        from repro.federation import OEmbedError

        _, rossi, _ = federation
        with pytest.raises(OEmbedError):
            rossi.oembed("https://rossi.example.net/content/404")


class TestUpnpScenario:
    def test_photoframe_slideshow(self, federation):
        fed, rossi, _ = federation
        rossi.publish("oscar", "pic one", "http://cdn/1.jpg", 100)
        frame = PhotoFrame(fed.ssdp)
        assert frame.refresh("family") == 1
        assert frame.slideshow == ["http://cdn/1.jpg"]

    def test_photoframe_realtime_updates(self, federation):
        """The paper's scenario: a photoframe shows a live slideshow of
        a family member's holiday pictures."""
        fed, rossi, _ = federation
        frame = PhotoFrame(fed.ssdp)
        fed.hub.subscribe(
            "frame", rossi.topic("oscar"), frame.on_new_content,
            verify=lambda c: c,
        )
        rossi.publish("oscar", "holiday 1", "http://cdn/h1.jpg", 100)
        rossi.publish("oscar", "holiday 2", "http://cdn/h2.jpg", 110)
        assert frame.slideshow == ["http://cdn/h1.jpg",
                                   "http://cdn/h2.jpg"]

    def test_media_server_browse(self, federation):
        _, rossi, _ = federation
        rossi.publish("oscar", "pic", "http://cdn/1.jpg", 100)
        listing = rossi.media_server.browse("family")
        assert len(listing["items"]) == 1
        assert listing["items"][0].title == "pic"

    def test_unknown_container(self, federation):
        from repro.federation import UpnpError

        _, rossi, _ = federation
        with pytest.raises(UpnpError):
            rossi.media_server.browse("nope")
