"""Client-side pieces: deferred uploads, cross-posting, debouncer, feeds."""

import pytest

from repro.platform import (
    Capture,
    ContentItem,
    Debouncer,
    DeferredUploadQueue,
    MediaType,
    Platform,
    TagAlbum,
    context_filtered_feed,
    default_crossposter,
    render_atom_feed,
)
from repro.sparql import Point

MOLE = Point(7.6934, 45.0692)


def _capture(ts, title="t", username="walter"):
    return Capture(
        username=username, title=title, tags=(), timestamp=ts, point=MOLE
    )


class TestDeferredUploads:
    def test_online_uploads_immediately(self):
        queue = DeferredUploadQueue()
        delivered = []
        queue.capture(_capture(1), upload=delivered.append)
        assert len(delivered) == 1
        assert len(queue) == 0

    def test_offline_buffers(self):
        queue = DeferredUploadQueue()
        queue.go_offline()
        delivered = []
        queue.capture(_capture(2), upload=delivered.append)
        queue.capture(_capture(1), upload=delivered.append)
        assert delivered == []
        assert len(queue) == 2

    def test_flush_in_capture_order(self):
        queue = DeferredUploadQueue()
        queue.go_offline()
        queue.capture(_capture(200))
        queue.capture(_capture(100))
        queue.go_online()
        delivered = []
        queue.flush(lambda c: delivered.append(c.timestamp))
        assert delivered == [100, 200]
        assert len(queue) == 0

    def test_flush_while_offline_rejected(self):
        queue = DeferredUploadQueue()
        queue.go_offline()
        with pytest.raises(RuntimeError):
            queue.flush(lambda c: c)

    def test_deferred_upload_context_uses_capture_time(self):
        """The crucial §1.1 property: context is bound to *creation*
        time, not upload time."""
        platform = Platform()
        platform.register_user("walter", "Walter Goix")
        # walter was at the Mole at t=1000, then moved far away
        platform.context.report_position("walter", 1000, MOLE)
        platform.context.report_position(
            "walter", 5000, Point(12.4964, 41.9028)
        )
        queue = DeferredUploadQueue()
        queue.go_offline()
        queue.capture(Capture(
            username="walter", title="Mole", tags=(), timestamp=1000,
        ))
        queue.go_online()
        items = queue.flush(platform.upload)
        assert any(
            "address:city=Turin" in t for t in items[0].context_tags
        ), "context must reflect Turin (capture time), not Rome (upload)"


class TestCrossPosting:
    def _item(self, title="Tramonto", media_type=MediaType.PHOTO):
        return ContentItem(
            pid=1, owner="walter", title=title,
            plain_tags=["mole"], context_tags=[],
            timestamp=1, media_type=media_type,
            media_url="http://cdn/x.jpg",
        )

    def test_all_networks(self):
        poster = default_crossposter()
        posts = poster.post(self._item())
        assert {p.network for p in posts} == {
            "facebook", "twitter", "flickr",
        }

    def test_selected_networks(self):
        poster = default_crossposter()
        posts = poster.post(self._item(), networks=["twitter"])
        assert [p.network for p in posts] == ["twitter"]

    def test_twitter_truncation(self):
        poster = default_crossposter()
        posts = poster.post(
            self._item(title="x" * 300), networks=["twitter"]
        )
        assert len(posts[0].text) <= 140

    def test_flickr_skips_video(self):
        poster = default_crossposter()
        posts = poster.post(
            self._item(media_type=MediaType.VIDEO),
            networks=["flickr"],
        )
        assert posts == []

    def test_unknown_network(self):
        poster = default_crossposter()
        with pytest.raises(KeyError):
            poster.post(self._item(), networks=["myspace"])

    def test_sink_records_history(self):
        poster = default_crossposter()
        poster.post(self._item())
        assert len(poster.sink("facebook").posts) == 1


class TestDebouncer:
    def test_fires_after_interval(self):
        debouncer = Debouncer()
        assert debouncer.keystroke("t", 0.0) is None
        assert debouncer.keystroke("tu", 0.5) is None
        assert debouncer.poll(1.0) is None
        assert debouncer.poll(2.6) == "tu"

    def test_typing_resets_timer(self):
        debouncer = Debouncer()
        debouncer.keystroke("t", 0.0)
        debouncer.keystroke("tu", 1.9)  # before the 2s deadline
        assert debouncer.poll(3.0) is None  # only 1.1s since last
        assert debouncer.poll(3.9) == "tu"

    def test_keystroke_fires_pending(self):
        debouncer = Debouncer()
        debouncer.keystroke("turin", 0.0)
        fired = debouncer.keystroke("turin c", 5.0)
        assert fired == "turin"

    def test_fired_history(self):
        debouncer = Debouncer()
        debouncer.keystroke("a", 0.0)
        debouncer.poll(3.0)
        assert debouncer.fired == ["a"]

    def test_no_fire_on_empty(self):
        debouncer = Debouncer()
        assert debouncer.poll(10.0) is None


class TestFeeds:
    def _items(self):
        return [
            ContentItem(
                pid=1, owner="walter", title="Mole <at night>",
                plain_tags=["mole"],
                context_tags=["place:is=crowded"],
                timestamp=1325376000, media_type=MediaType.PHOTO,
                media_url="http://cdn/1.jpg",
            ),
            ContentItem(
                pid=2, owner="carmen", title="Quiet square",
                plain_tags=["piazza"],
                context_tags=["place:is=quiet"],
                timestamp=1325376100, media_type=MediaType.PHOTO,
                media_url="http://cdn/2.jpg",
            ),
        ]

    def test_atom_structure(self):
        feed = render_atom_feed(self._items(), "All content")
        assert feed.startswith('<?xml version="1.0"')
        assert "<feed xmlns=\"http://www.w3.org/2005/Atom\">" in feed
        assert feed.count("<entry>") == 2

    def test_xml_escaping(self):
        feed = render_atom_feed(self._items(), "t")
        assert "Mole &lt;at night&gt;" in feed

    def test_timestamps_rfc3339(self):
        feed = render_atom_feed(self._items(), "t")
        assert "2012-01-01T00:00:00Z" in feed

    def test_context_filtered(self):
        feed = context_filtered_feed(
            self._items(),
            TagAlbum(namespace="place", predicate="is", value="crowded"),
            "Crowded places",
        )
        assert feed.count("<entry>") == 1
        assert "Mole" in feed

    def test_categories_included(self):
        feed = render_atom_feed(self._items(), "t")
        assert '<category term="mole"/>' in feed
