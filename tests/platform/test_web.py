"""Web interface tests (paper §3) + region annotations (§1.1)."""

import pytest

from repro.platform import (
    Capture,
    OpenIdError,
    OpenIdProvider,
    Platform,
    RelyingParty,
    WebInterface,
    is_mobile_user_agent,
)
from repro.rdf import URIRef
from repro.sparql import Point

NEAR_MOLE = Point(7.6930, 45.0690)

DESKTOP_UA = (
    "Mozilla/5.0 (Windows NT 6.1) AppleWebKit/535.7 Chrome/16 Safari/535"
)
MOBILE_UA = (
    "Mozilla/5.0 (iPhone; CPU iPhone OS 5_0 like Mac OS X) "
    "AppleWebKit/534.46 Mobile Safari"
)


@pytest.fixture
def web():
    platform = Platform()
    provider = OpenIdProvider("https://openid.example.org")
    provider.register_identity("https://openid.example.org/walter")
    provider.register_identity("https://openid.example.org/stranger")
    rp = RelyingParty()
    rp.add_provider(provider)
    platform.register_user(
        "walter", "Walter Goix",
        openid="https://openid.example.org/walter",
    )
    platform.register_user("oscar", "Oscar Rodriguez")
    for i in range(25):
        platform.upload(Capture(
            username="walter" if i % 2 == 0 else "oscar",
            title=f"picture {i}",
            tags=("mole",),
            timestamp=1000 + i,
            point=NEAR_MOLE,
        ))
        platform.rate(i + 1, (i % 5) + 1.0)
    return WebInterface(platform, rp)


def login(web, user_agent=DESKTOP_UA):
    return web.login_with_openid(
        "https://openid.example.org/walter", user_agent
    )


class TestRouting:
    def test_ua_detection(self):
        assert is_mobile_user_agent(MOBILE_UA)
        assert not is_mobile_user_agent(DESKTOP_UA)

    def test_desktop_stays(self, web):
        decision = web.route(DESKTOP_UA)
        assert decision.interface == "web"
        assert not decision.redirected

    def test_mobile_redirected(self, web):
        decision = web.route(MOBILE_UA)
        assert decision.interface == "mobile"
        assert decision.redirected

    def test_switch_back_override(self, web):
        session = login(web, MOBILE_UA)
        assert session.interface == "mobile"
        web.switch_interface(session, "web")
        decision = web.route(MOBILE_UA, session)
        assert decision.interface == "web"
        assert not decision.redirected

    def test_invalid_interface(self, web):
        session = login(web)
        with pytest.raises(ValueError):
            web.switch_interface(session, "tv")


class TestSessions:
    def test_login_maps_openid_to_user(self, web):
        session = login(web)
        assert session.username == "walter"
        assert web.session(session.session_id) is session

    def test_login_unknown_account(self, web):
        with pytest.raises(OpenIdError):
            web.login_with_openid(
                "https://openid.example.org/stranger"
            )

    def test_logout(self, web):
        session = login(web)
        web.logout(session)
        with pytest.raises(KeyError):
            web.session(session.session_id)


class TestProfile:
    def test_update_profile(self, web):
        session = login(web)
        web.update_profile(session, email="w@example.org")
        assert web.profile("walter")["email"] == "w@example.org"

    def test_profile_unknown_user(self, web):
        with pytest.raises(KeyError):
            web.profile("ghost")

    def test_add_friend(self, web):
        session = login(web)
        web.add_friend(session, "oscar")
        assert web.friends_of("walter") == ["oscar"]
        assert web.friends_of("oscar") == ["walter"]

    def test_sql_quote_in_profile(self, web):
        session = login(web)
        web.update_profile(session, full_name="Walter O'Goix")
        assert web.profile("walter")["full_name"] == "Walter O'Goix"


class TestBrowsing:
    def test_pagination(self, web):
        page1 = web.browse(page=1, page_size=10)
        page3 = web.browse(page=3, page_size=10)
        assert page1.total == 25
        assert page1.pages == 3
        assert len(page1.items) == 10
        assert len(page3.items) == 5
        assert page1.has_next
        assert not page3.has_next

    def test_newest_first(self, web):
        page = web.browse(page=1, page_size=5)
        stamps = [i.timestamp for i in page.items]
        assert stamps == sorted(stamps, reverse=True)

    def test_top_rated(self, web):
        page = web.browse(order="top-rated", page_size=5)
        assert all(i.rating == 5.0 for i in page.items)

    def test_owner_filter(self, web):
        page = web.browse(owner="oscar", page_size=50)
        assert all(i.owner == "oscar" for i in page.items)
        assert page.total == 12

    def test_invalid_arguments(self, web):
        with pytest.raises(ValueError):
            web.browse(page=0)
        with pytest.raises(ValueError):
            web.browse(order="random")

    def test_empty_page(self, web):
        page = web.browse(page=99, page_size=10)
        assert page.items == []


class TestEditing:
    def test_edit_title_and_tags(self, web):
        session = login(web)
        item = web.edit_content(
            session, 1, title="new title", tags=["piazza"]
        )
        assert item.title == "new title"
        row = web.platform.db.table("pictures").get(1)
        assert row["title"] == "new title"
        assert "piazza" in row["keywords"].split()
        # context tags preserved
        assert any(
            k.startswith("address:city=")
            for k in row["keywords"].split()
        )

    def test_edit_requires_ownership(self, web):
        session = login(web)  # walter
        with pytest.raises(PermissionError):
            web.edit_content(session, 2, title="hijack")  # oscar's

    def test_delete_content(self, web):
        session = login(web)
        web.delete_content(session, 1)
        with pytest.raises(KeyError):
            web.platform.content(1)
        assert web.platform.db.table("pictures").get(1) is None

    def test_edit_reflects_in_rdf_after_resemanticize(self, web):
        from repro.rdf import DC, Literal, TL_PID

        session = login(web)
        web.edit_content(session, 1, title="La Gran Madre")
        graph = web.platform.union_graph()  # rebuilds (dirty)
        assert graph.value(
            TL_PID["1"], DC.title
        ) == Literal("La Gran Madre")


class TestRegionAnnotations:
    def test_annotate_and_list(self, web):
        session = login(web)
        rid = web.annotate_region(
            session, 1, 0.1, 0.2, 0.3, 0.4, note="the dome"
        )
        regions = web.platform.regions(1)
        assert len(regions) == 1
        assert regions[0]["rid"] == rid
        assert regions[0]["note"] == "the dome"

    def test_bounds_validation(self, web):
        session = login(web)
        with pytest.raises(ValueError):
            web.annotate_region(session, 1, 0.9, 0.9, 0.5, 0.5)
        with pytest.raises(ValueError):
            web.annotate_region(session, 1, -0.1, 0.0, 0.5, 0.5)
        with pytest.raises(ValueError):
            web.annotate_region(session, 1, 0.0, 0.0, 0.0, 0.5)

    def test_ownership_required(self, web):
        session = login(web)
        with pytest.raises(PermissionError):
            web.annotate_region(session, 2, 0.1, 0.1, 0.2, 0.2)

    def test_regions_lifted_to_rdf(self, web):
        from repro.platform import TLV
        from repro.rdf import RDF, TL_PID, URIRef

        session = login(web)
        rid = web.annotate_region(
            session, 1, 0.1, 0.2, 0.3, 0.4, note="the dome"
        )
        graph = web.platform.union_graph()
        region = URIRef(f"http://beta.teamlife.it/regions/{rid}")
        assert (region, RDF.type, TLV.Region) in graph
        assert (region, TLV.on, TL_PID["1"]) in graph

    def test_delete_cascades_regions(self, web):
        session = login(web)
        web.annotate_region(session, 1, 0.1, 0.2, 0.3, 0.4)
        web.delete_content(session, 1)
        assert len(web.platform.db.table("regions")) == 0
