"""OpenID-style sign-in flow tests."""

import pytest

from repro.platform import (
    OpenIdError,
    OpenIdProvider,
    RelyingParty,
    normalize_identifier,
)


@pytest.fixture
def world():
    provider_a = OpenIdProvider("https://openid.example.org")
    provider_a.register_identity("https://openid.example.org/oscar")
    provider_b = OpenIdProvider("https://id.other.net")
    provider_b.register_identity("https://id.other.net/walter")
    rp = RelyingParty()
    rp.add_provider(provider_a)
    rp.add_provider(provider_b)
    return rp, provider_a, provider_b


class TestNormalization:
    def test_scheme_added(self):
        assert normalize_identifier("example.org/me") == \
            "http://example.org/me"

    def test_fragment_dropped(self):
        assert normalize_identifier("http://example.org/me#frag") == \
            "http://example.org/me"

    def test_trailing_slash_trimmed(self):
        assert normalize_identifier("http://example.org/me/") == \
            "http://example.org/me"

    def test_host_lowercased(self):
        assert normalize_identifier("http://Example.ORG/Me") == \
            "http://example.org/Me"

    def test_empty_rejected(self):
        with pytest.raises(OpenIdError):
            normalize_identifier("   ")


class TestFlow:
    def test_happy_path(self, world):
        rp, _, _ = world
        assert rp.authenticate("https://openid.example.org/oscar") == \
            "https://openid.example.org/oscar"

    def test_any_provider(self, world):
        # "their OpenID accounts of any OpenID provider"
        rp, _, _ = world
        assert rp.authenticate("https://id.other.net/walter")

    def test_unknown_identity(self, world):
        rp, _, _ = world
        with pytest.raises(OpenIdError):
            rp.authenticate("https://openid.example.org/nobody")

    def test_replay_rejected(self, world):
        rp, provider, _ = world
        claimed = "https://openid.example.org/oscar"
        handle = rp.begin(claimed)
        assertion = provider.assert_identity(claimed, handle)
        assert rp.complete(assertion) == claimed
        with pytest.raises(OpenIdError):
            rp.complete(assertion)  # handle already consumed

    def test_forged_signature_rejected(self, world):
        from repro.platform import Assertion

        rp, provider, _ = world
        claimed = "https://openid.example.org/oscar"
        handle = rp.begin(claimed)
        forged = Assertion(claimed, handle, "deadbeef")
        with pytest.raises(OpenIdError):
            rp.complete(forged)

    def test_swapped_identity_rejected(self, world):
        rp, provider_a, provider_b = world
        handle = rp.begin("https://openid.example.org/oscar")
        other = provider_b.assert_identity(
            "https://id.other.net/walter", handle
        )
        with pytest.raises(OpenIdError):
            rp.complete(other)
