"""End-to-end platform tests: the paper's full scenario.

Builds the Turin scenario on the real platform — users, friendships,
uploads with context, semanticization — then runs the paper's queries
Q1–Q3, the mashup and the mobile search against the triple store.
"""

import pytest

from repro.core import geo_album, rated_album, run_mashup, social_album
from repro.platform import (
    Capture,
    MediaType,
    Platform,
    SearchInterface,
    by_place_type,
    by_user,
)
from repro.rdf import DCTERMS, FOAF, RDF, SIOCT, TL_PID, TL_USER
from repro.sparql import Point

MOLE = Point(7.6934, 45.0692)
NEAR_MOLE = Point(7.6930, 45.0690)
NEAR_MOLE_2 = Point(7.6938, 45.0695)
FAR_AWAY = Point(7.6500, 45.0300)


@pytest.fixture(scope="module")
def platform():
    p = Platform()
    p.register_user("oscar", "Oscar Rodriguez")
    p.register_user(
        "walter", "Walter Goix",
        external_accounts=("http://twitter.com/wgoix",),
    )
    p.register_user("carmen", "Carmen Criminisi")
    p.add_friendship("oscar", "walter")

    # walter photographs the Mole (friend of oscar, near the monument)
    p.upload(Capture(
        username="walter",
        title="Tramonto sulla Mole Antonelliana",
        tags=("mole", "tramonto"),
        timestamp=1000,
        point=NEAR_MOLE,
    ))
    # carmen photographs the Mole too (NOT a friend of oscar)
    p.upload(Capture(
        username="carmen",
        title="Mole Antonelliana by night",
        tags=("night",),
        timestamp=1010,
        point=NEAR_MOLE_2,
    ))
    # walter photographs far from the Mole
    p.upload(Capture(
        username="walter",
        title="periferia di Torino",
        tags=(),
        timestamp=2000,
        point=FAR_AWAY,
    ))
    # a second walter picture near the Mole with a low rating
    p.upload(Capture(
        username="walter",
        title="another Mole picture",
        tags=("mole",),
        timestamp=3000,
        point=NEAR_MOLE,
    ))
    p.rate(1, 5.0)
    p.rate(2, 3.0)
    p.rate(3, 4.0)
    p.rate(4, 2.0)
    p.semanticize()
    return p


class TestUploadPipeline:
    def test_context_tags_attached(self, platform):
        item = platform.content(1)
        assert any(t.startswith("address:city=") for t in
                   item.context_tags)
        assert any(t.startswith("cell:cgi=") for t in item.context_tags)

    def test_nearby_buddy_tag(self, platform):
        # carmen uploaded at 1010; walter's position at 1000 is nearby,
        # but they are not friends — so no people tag for carmen
        carmen_item = platform.content(2)
        assert not any(
            t.startswith("people:") for t in carmen_item.context_tags
        )

    def test_keywords_column_space_separated(self, platform):
        row = platform.db.table("pictures").get(1)
        assert "mole" in row["keywords"].split()
        assert any(
            k.startswith("address:city=")
            for k in row["keywords"].split()
        )

    def test_geometry_stored_as_wkt(self, platform):
        row = platform.db.table("pictures").get(1)
        assert row["geometry"].startswith("POINT(")

    def test_rating_bounds(self, platform):
        with pytest.raises(ValueError):
            platform.rate(1, 9.0)


class TestSemanticization:
    def test_d2r_types(self, platform):
        g = platform.union_graph()
        assert (TL_PID["1"], RDF.type, SIOCT.MicroblogPost) in g
        assert (TL_USER.walter, RDF.type, FOAF.Person) in g

    def test_friendship_both_directions(self, platform):
        g = platform.union_graph()
        assert (TL_USER.oscar, FOAF.knows, TL_USER.walter) in g
        assert (TL_USER.walter, FOAF.knows, TL_USER.oscar) in g

    def test_keyword_triples_split(self, platform):
        from repro.platform import TLV

        g = platform.union_graph()
        keywords = {
            str(o) for o in g.objects(TL_PID["1"], TLV.keyword)
        }
        assert "mole" in keywords
        assert "tramonto" in keywords

    def test_semantic_annotation_attached(self, platform):
        from repro.rdf import DBPR

        g = platform.union_graph()
        subjects = set(g.objects(TL_PID["1"], DCTERMS.subject))
        assert DBPR.Mole_Antonelliana in subjects

    def test_location_link(self, platform):
        from repro.lod.geonames import geonames_uri
        from repro.platform import TLV

        g = platform.union_graph()
        assert (
            TL_PID["1"], TLV.location, geonames_uri(3165524)
        ) in g

    def test_annotation_result_recorded(self, platform):
        result = platform.annotation_result(1)
        assert result is not None
        assert result.language == "it"

    def test_dump_ntriples_loadable(self, platform):
        from repro.rdf import load_ntriples

        dump = platform.dump_ntriples()
        graph = load_ntriples(dump)
        assert len(graph) > 20


class TestPaperQueriesOnPlatform:
    def test_q1_geo_album(self, platform):
        album = geo_album("Mole Antonelliana", radius_km=0.3)
        links = set(album.links(platform.evaluator()))
        items = {platform.content(pid).media_url for pid in (1, 2, 4)}
        assert links == items

    def test_q2_social_album(self, platform):
        album = social_album("Mole Antonelliana", friend_of="oscar")
        links = set(album.links(platform.evaluator()))
        # carmen's picture drops out
        items = {platform.content(pid).media_url for pid in (1, 4)}
        assert links == items

    def test_q3_rating_order(self, platform):
        album = rated_album("Mole Antonelliana", friend_of="oscar")
        links = album.links(platform.evaluator())
        assert links == [
            platform.content(1).media_url,
            platform.content(4).media_url,
        ]

    def test_album_radius_parameter(self, platform):
        wide = geo_album("Mole Antonelliana", radius_km=10.0)
        links = wide.links(platform.evaluator())
        assert len(links) == 4  # the far-away picture joins


class TestMashup:
    def test_sections_present(self, platform):
        view = run_mashup(platform.evaluator(), pid=1, language="it")
        assert view["city"], "city abstract branch must match"
        assert view["restaurant"], "nearby restaurants branch"
        assert view["tourism"], "nearby attractions branch"
        assert view["ugc"], "other UGC at the same location"

    def test_city_branch_content(self, platform):
        view = run_mashup(platform.evaluator(), pid=1, language="it")
        city = view["city"][0]
        assert "Torino" in city.label or "Turin" in city.label
        assert city.description is not None

    def test_restaurant_websites(self, platform):
        view = run_mashup(platform.evaluator(), pid=1, language="it")
        assert any(
            s.description and "example.org" in s.description
            for s in view["restaurant"]
        )

    def test_ugc_branch_excludes_self(self, platform):
        view = run_mashup(platform.evaluator(), pid=1, language="it")
        assert all(
            str(s.resource) != str(TL_PID["1"]) for s in view["ugc"]
        )

    def test_per_branch_limit(self, platform):
        view = run_mashup(
            platform.evaluator(), pid=1, language="it",
        )
        for kind in ("city", "restaurant", "tourism", "ugc"):
            assert len(view[kind]) <= 5


class TestSearchInterface:
    @pytest.fixture(scope="class")
    def search(self, platform):
        return SearchInterface(
            platform.union_graph(), platform.contents()
        )

    def test_suggest_prefix(self, search):
        suggestions = search.suggest("turi")
        assert suggestions
        assert any("Turin" in s.label for s in suggestions)

    def test_suggest_geo_ranking(self, search):
        near_turin = search.suggest("mole", user_point=MOLE)
        assert any(
            "Mole Antonelliana" in s.label for s in near_turin[:3]
        )

    def test_content_for_resource_by_annotation(self, search, platform):
        from repro.rdf import DBPR

        items = search.content_for_resource(DBPR.Mole_Antonelliana)
        pids = {i.pid for i in items}
        assert 1 in pids

    def test_content_for_resource_by_geo(self, search):
        from repro.rdf import DBPR

        items = search.content_for_resource(
            DBPR.Mole_Antonelliana, radius_km=0.3
        )
        assert {i.pid for i in items} >= {1, 2, 4}

    def test_keyword_baseline(self, search):
        items = search.keyword_search("mole")
        # titles and tags both match; the far-away Torino shot does not
        assert {i.pid for i in items} == {1, 2, 4}

    def test_keyword_baseline_misses_synonym(self, search):
        # the motivating failure: Italian title, English query
        assert search.keyword_search("sunset") == []


class TestTagAlbums:
    def test_by_user_album(self, platform):
        # pictures taken while Walter Goix was nearby carry his people tag
        album = by_user("Walter Goix")
        selected = album.select(platform.contents())
        assert all(
            any("people:fn=Walter+Goix" == t for t in i.context_tags)
            for i in selected
        )

    def test_plain_tag_album(self, platform):
        from repro.platform import TagAlbum

        album = TagAlbum(plain_tag="mole")
        assert {i.pid for i in album.select(platform.contents())} == {1, 4}

    def test_empty_album_filter_rejected(self):
        from repro.platform import TagAlbum

        with pytest.raises(ValueError):
            TagAlbum()
