"""sparqlPuSH tests: proactive notification of RDF store updates."""

import pytest

from repro.platform.sparql_push import SparqlPushError, SparqlPushService
from repro.rdf import FOAF, Graph, Literal, RDF, SIOCT, URIRef

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


@pytest.fixture
def service():
    graph = Graph()
    graph.add((ex("pic1"), RDF.type, SIOCT.MicroblogPost))
    graph.add((ex("pic1"), FOAF.maker, ex("walter")))
    return SparqlPushService(graph), graph


QUERY = "SELECT ?p WHERE { ?p a sioct:MicroblogPost }"


class TestRegistration:
    def test_register_select(self, service):
        push, _ = service
        sub_id = push.register(QUERY)
        assert push.topic(sub_id) == f"sparqlpush:{sub_id}"

    def test_register_ask_rejected(self, service):
        push, _ = service
        with pytest.raises(SparqlPushError):
            push.register("ASK { ?s ?p ?o }")

    def test_unregister(self, service):
        push, _ = service
        sub_id = push.register(QUERY)
        push.unregister(sub_id)
        with pytest.raises(SparqlPushError):
            push.topic(sub_id)

    def test_unregister_unknown(self, service):
        push, _ = service
        with pytest.raises(SparqlPushError):
            push.unregister("zzz")


class TestNotification:
    def test_new_match_notifies(self, service):
        push, graph = service
        sub_id = push.register(QUERY)
        received = []
        push.listen(sub_id, "mobile-1",
                    lambda topic, payload: received.append(payload))

        graph.add((ex("pic2"), RDF.type, SIOCT.MicroblogPost))
        deliveries = push.notify_update()

        assert deliveries == {sub_id: 1}
        assert len(received) == 1
        added = received[0]["added"]
        assert added == [{"p": EX + "pic2"}]

    def test_no_change_no_notification(self, service):
        push, graph = service
        sub_id = push.register(QUERY)
        received = []
        push.listen(sub_id, "mobile-1",
                    lambda topic, payload: received.append(payload))

        graph.add((ex("walter"), FOAF.name, Literal("walter")))
        assert push.notify_update() == {}
        assert received == []

    def test_removal_reported_as_count(self, service):
        push, graph = service
        sub_id = push.register(QUERY)
        received = []
        push.listen(sub_id, "mobile-1",
                    lambda topic, payload: received.append(payload))

        graph.remove((ex("pic1"), RDF.type, SIOCT.MicroblogPost))
        push.notify_update()
        assert received[0]["removed_count"] == 1
        assert received[0]["added"] == []

    def test_state_advances_between_updates(self, service):
        push, graph = service
        sub_id = push.register(QUERY)
        received = []
        push.listen(sub_id, "m",
                    lambda topic, payload: received.append(payload))

        graph.add((ex("pic2"), RDF.type, SIOCT.MicroblogPost))
        push.notify_update()
        graph.add((ex("pic3"), RDF.type, SIOCT.MicroblogPost))
        push.notify_update()
        assert [p["added"][0]["p"] for p in received] == [
            EX + "pic2", EX + "pic3",
        ]

    def test_multiple_subscribers(self, service):
        push, graph = service
        sub_id = push.register(QUERY)
        hits = []
        push.listen(sub_id, "a", lambda t, p: hits.append("a"))
        push.listen(sub_id, "b", lambda t, p: hits.append("b"))
        graph.add((ex("pic9"), RDF.type, SIOCT.MicroblogPost))
        deliveries = push.notify_update()
        assert deliveries[sub_id] == 2
        assert sorted(hits) == ["a", "b"]

    def test_multiple_queries_independent(self, service):
        push, graph = service
        posts = push.register(QUERY)
        makers = push.register(
            "SELECT ?u WHERE { ?p foaf:maker ?u }"
        )
        received = {}
        push.listen(posts, "pa",
                    lambda t, p, k=posts: received.setdefault(k, p))
        push.listen(makers, "ma",
                    lambda t, p, k=makers: received.setdefault(k, p))

        graph.add((ex("pic2"), RDF.type, SIOCT.MicroblogPost))
        deliveries = push.notify_update()
        assert posts in deliveries
        assert makers not in deliveries


class TestPlatformIntegration:
    def test_new_upload_notifies_virtual_album_watchers(self):
        """The sparqlPuSH use case: a mobile client watches the 'near
        the Mole' virtual album and is told when new content appears."""
        from repro.core.albums import geo_album
        from repro.platform import Capture, Platform
        from repro.sparql import Point

        platform = Platform()
        platform.register_user("walter", "Walter Goix")
        platform.upload(Capture(
            username="walter", title="Mole uno", tags=(),
            timestamp=1000, point=Point(7.6930, 45.0690),
        ))
        # provider form: notify_update re-pulls the current union, so a
        # re-semanticized upload is visible without hand-feeding triples
        push = SparqlPushService(platform.union_graph)
        album = geo_album("Mole Antonelliana", radius_km=0.3)
        sub_id = push.register(album.query)
        received = []
        push.listen(sub_id, "mobile",
                    lambda t, p: received.append(p))

        platform.upload(Capture(
            username="walter", title="Mole due", tags=(),
            timestamp=2000, point=Point(7.6931, 45.0691),
        ))
        push.notify_update()

        assert len(received) == 1
        assert len(received[0]["added"]) == 1

    def test_union_snapshot_is_read_only(self):
        """The union handed to watchers is a frozen view: feeding
        triples into it (the old workaround for stale snapshots) now
        raises instead of silently diverging from the store."""
        from repro.platform import Capture, Platform
        from repro.rdf.graph import FrozenGraphError
        from repro.sparql import Point

        platform = Platform()
        platform.register_user("walter", "Walter Goix")
        platform.upload(Capture(
            username="walter", title="Mole uno", tags=(),
            timestamp=1000, point=Point(7.6930, 45.0690),
        ))
        union = platform.union_graph()
        with pytest.raises(FrozenGraphError):
            union.add((ex("x"), RDF.type, SIOCT.MicroblogPost))
        # a thawed copy is writable and leaves the union untouched
        thawed = union.copy()
        thawed.add((ex("x"), RDF.type, SIOCT.MicroblogPost))
        assert len(thawed) == len(union) + 1
