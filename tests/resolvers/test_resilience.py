"""Resilience-layer tests: retry/backoff schedules, breaker state
transitions, cache TTL/LRU behavior, timeout, and fault injection."""

import threading

import pytest

from repro.rdf import DBPR
from repro.resolvers import Candidate, Resolver
from repro.resolvers.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CircuitOpenError,
    FlakyResolver,
    ResilientResolver,
    ResolverTimeoutError,
    RetryPolicy,
    TTLCache,
    wrap_resilient,
)


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class ScriptedResolver(Resolver):
    """Fails for the first ``fail_first`` calls, then succeeds."""

    name = "scripted"

    def __init__(self, fail_first: int = 0) -> None:
        self.fail_first = fail_first
        self.calls = 0

    def resolve_term(self, word, language=None):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise RuntimeError(f"scripted failure #{self.calls}")
        return [Candidate(
            resource=DBPR.Turin, label="Turin", score=1.0,
            resolver=self.name, word=word,
        )]


class TestRetryPolicy:
    def test_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert policy.schedule() == [0.1, 0.2, 0.4, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            attempts=3, base_delay=0.1, multiplier=2.0,
            max_delay=10.0, jitter=0.5,
        )
        first = policy.schedule("dbpedia:turin")
        again = policy.schedule("dbpedia:turin")
        other = policy.schedule("dbpedia:rome")
        assert first == again          # same key -> same schedule
        assert first != other          # different key -> spread out
        for base, delayed in zip([0.1, 0.2], first):
            assert base <= delayed <= base * 1.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        assert breaker.state == BREAKER_CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 1
        assert not breaker.allow()

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=10.0, clock=clock
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()          # the single probe slot
        assert not breaker.allow()      # concurrent probe rejected
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()          # a fresh probe after the wait

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED


class LockProbeClock:
    """A clock that fails the test if invoked while the owner's
    internal lock is held (regression guard: time functions must be
    sampled *before* ``self._lock`` is taken, never under it)."""

    def __init__(self) -> None:
        self.now = 0.0
        self.owner = None
        self.calls = 0
        self.violations = 0

    def __call__(self) -> float:
        self.calls += 1
        lock = self.owner._lock
        if lock.acquire(blocking=False):
            lock.release()
        else:
            self.violations += 1
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestNoClockCallsUnderLock:
    """The breaker and cache must never invoke the injected clock while
    holding ``self._lock`` — a slow or reentrant clock would otherwise
    stall every other thread (or deadlock a reentrant caller)."""

    def test_breaker_never_calls_clock_under_lock(self):
        clock = LockProbeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        clock.owner = breaker

        breaker.record_failure()            # trips open
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

        assert clock.calls > 0
        assert clock.violations == 0

    def test_cache_never_calls_clock_under_lock(self):
        clock = LockProbeClock()
        cache = TTLCache(max_size=4, ttl=10.0, clock=clock)
        clock.owner = cache

        cache.put("k", "v")
        assert cache.get("k") == (True, "v")
        clock.advance(10.0)
        assert cache.get("k") == (False, None)
        cache.put("k", "v2")

        assert clock.calls > 0
        assert clock.violations == 0


class TestTTLCache:
    def test_hit_and_miss(self):
        cache = TTLCache(max_size=4, ttl=None)
        assert cache.get("k") == (False, None)
        cache.put("k", [1, 2])
        assert cache.get("k") == (True, [1, 2])
        assert cache.hits == 1
        assert cache.misses == 1

    def test_cached_empty_list_is_a_hit(self):
        cache = TTLCache(max_size=4, ttl=None)
        cache.put("empty", [])
        hit, value = cache.get("empty")
        assert hit is True
        assert value == []

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = TTLCache(max_size=4, ttl=60.0, clock=clock)
        cache.put("k", "v")
        clock.advance(59.9)
        assert cache.get("k") == (True, "v")
        clock.advance(0.1)              # exactly at the TTL boundary
        assert cache.get("k") == (False, None)
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = TTLCache(max_size=2, ttl=None)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")                  # refresh a -> b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.evictions == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TTLCache(max_size=0)
        with pytest.raises(ValueError):
            TTLCache(ttl=0.0)


class TestResilientResolver:
    def _wrap(self, inner, **kwargs):
        kwargs.setdefault(
            "retry",
            RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
        )
        kwargs.setdefault("sleep", lambda _: None)
        return ResilientResolver(inner, **kwargs)

    def test_retries_until_success(self):
        inner = ScriptedResolver(fail_first=2)
        slept = []
        resolver = self._wrap(inner, sleep=slept.append)
        candidates = resolver.resolve_term("Turin")
        assert candidates[0].resource == DBPR.Turin
        assert inner.calls == 3
        # two backoffs: 0.01 then 0.02 (no jitter)
        assert slept == pytest.approx([0.01, 0.02])
        stats = resolver.stats()
        assert stats.retries == 2
        assert stats.successes == 1
        assert stats.failures == 0

    def test_exhausted_retries_raise_original_error(self):
        inner = ScriptedResolver(fail_first=10)
        resolver = self._wrap(inner)
        with pytest.raises(RuntimeError, match="scripted failure"):
            resolver.resolve_term("Turin")
        assert inner.calls == 3
        assert resolver.stats().failures == 1

    def test_cache_prevents_second_call(self):
        inner = ScriptedResolver()
        resolver = self._wrap(inner)
        first = resolver.resolve_term("Turin")
        second = resolver.resolve_term("Turin")
        assert first == second
        assert inner.calls == 1
        stats = resolver.stats()
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.cache_hit_rate == 0.5

    def test_cached_value_is_copied(self):
        inner = ScriptedResolver()
        resolver = self._wrap(inner)
        first = resolver.resolve_term("Turin")
        first.append("tampered")
        assert resolver.resolve_term("Turin") != first

    def test_cache_ttl_expiry_recalls_inner(self):
        clock = FakeClock()
        inner = ScriptedResolver()
        resolver = self._wrap(
            inner,
            cache=TTLCache(max_size=8, ttl=30.0, clock=clock),
            clock=clock,
        )
        resolver.resolve_term("Turin")
        clock.advance(31.0)
        resolver.resolve_term("Turin")
        assert inner.calls == 2

    def test_breaker_opens_and_rejects(self):
        clock = FakeClock()
        inner = ScriptedResolver(fail_first=100)
        resolver = self._wrap(
            inner,
            breaker=CircuitBreaker(
                failure_threshold=3, reset_timeout=60.0, clock=clock
            ),
            clock=clock,
        )
        with pytest.raises(RuntimeError):
            resolver.resolve_term("Turin")   # 3 attempts -> breaker opens
        with pytest.raises(CircuitOpenError):
            resolver.resolve_term("Rome")    # rejected without a call
        assert inner.calls == 3
        stats = resolver.stats()
        assert stats.breaker_state == BREAKER_OPEN
        assert stats.breaker_trips == 1
        assert stats.rejected == 1

    def test_breaker_half_open_recovery(self):
        clock = FakeClock()
        inner = ScriptedResolver(fail_first=3)
        resolver = self._wrap(
            inner,
            breaker=CircuitBreaker(
                failure_threshold=3, reset_timeout=60.0, clock=clock
            ),
            clock=clock,
        )
        with pytest.raises(RuntimeError):
            resolver.resolve_term("Turin")
        clock.advance(60.0)
        # the probe call succeeds (inner recovered) and closes the loop
        assert resolver.resolve_term("Rome")
        assert resolver.stats().breaker_state == BREAKER_CLOSED

    def test_timeout_raises(self):
        done = threading.Event()

        class Slow(Resolver):
            name = "slow"

            def resolve_term(self, word, language=None):
                done.wait(5.0)
                return []

        resolver = ResilientResolver(
            Slow(),
            retry=RetryPolicy(attempts=1),
            timeout=0.05,
        )
        with pytest.raises(ResolverTimeoutError):
            resolver.resolve_term("Turin")
        done.set()
        assert resolver.stats().timeouts == 1

    def test_full_text_delegation(self):
        class FullText(Resolver):
            name = "ft"

            def resolve_term(self, word, language=None):
                return []

            def resolve_text(self, text, language=None):
                return [Candidate(
                    resource=DBPR.Turin, label="Turin", score=0.5,
                    resolver=self.name, word="turin",
                )]

        plain = self._wrap(ScriptedResolver())
        assert plain.supports_full_text is False
        full = self._wrap(FullText())
        assert full.supports_full_text is True
        assert full.resolve_text("a view of turin")

    def test_wrap_resilient_isolates_breakers_and_caches(self):
        resolvers = wrap_resilient(
            [ScriptedResolver(), ScriptedResolver()]
        )
        assert resolvers[0].breaker is not resolvers[1].breaker
        assert resolvers[0].cache is not resolvers[1].cache


class TestFlakyResolver:
    def test_always_failing(self):
        flaky = FlakyResolver(ScriptedResolver(), failure_rate=1.0)
        with pytest.raises(RuntimeError, match="injected fault"):
            flaky.resolve_term("Turin")
        assert flaky.injected_failures == 1

    def test_never_failing_delegates(self):
        inner = ScriptedResolver()
        flaky = FlakyResolver(inner, failure_rate=0.0)
        assert flaky.resolve_term("Turin")
        assert inner.calls == 1

    def test_seeded_determinism_per_input(self):
        def outcomes(seed):
            flaky = FlakyResolver(
                ScriptedResolver(), failure_rate=0.5, seed=seed
            )
            result = []
            for word in ["a", "b", "c", "d", "e", "f"]:
                try:
                    flaky.resolve_term(word)
                    result.append(True)
                except RuntimeError:
                    result.append(False)
            return result

        assert outcomes(1) == outcomes(1)
        assert outcomes(1) != outcomes(2)

    def test_fail_first_shape(self):
        inner = ScriptedResolver()
        flaky = FlakyResolver(inner, fail_first=2)
        for _ in range(2):
            with pytest.raises(RuntimeError):
                flaky.resolve_term("Turin")
        assert flaky.resolve_term("Turin")
        # a different input gets its own fail-first counter
        with pytest.raises(RuntimeError):
            flaky.resolve_term("Rome")

    def test_retry_through_resilient_wrapper_succeeds(self):
        inner = ScriptedResolver()
        flaky = FlakyResolver(inner, fail_first=2)
        resolver = ResilientResolver(
            flaky,
            retry=RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0),
            sleep=lambda _: None,
        )
        assert resolver.resolve_term("Turin")
        assert resolver.stats().retries == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FlakyResolver(ScriptedResolver(), failure_rate=1.5)
        with pytest.raises(ValueError):
            FlakyResolver(ScriptedResolver(), latency=-1.0)
