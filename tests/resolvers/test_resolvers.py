"""Resolver and broker tests."""

import pytest

from repro.lod import build_lod_corpus
from repro.rdf import DBPR, EVRIR, OWL, RDF, URIRef
from repro.resolvers import (
    Candidate,
    DBpediaResolver,
    EvriResolver,
    GRAPH_DBPEDIA,
    GRAPH_EVRI,
    GRAPH_GEONAMES,
    GRAPH_OTHER,
    GeonamesResolver,
    SemanticBroker,
    SindiceResolver,
    ZemantaResolver,
    build_evri_graph,
    classify_graph,
    default_resolvers,
)
from repro.lod.geonames import geonames_uri


@pytest.fixture(scope="module")
def corpus():
    return build_lod_corpus()


@pytest.fixture(scope="module")
def dbpedia_resolver(corpus):
    return DBpediaResolver(corpus.dbpedia)


@pytest.fixture(scope="module")
def geonames_resolver(corpus):
    return GeonamesResolver(corpus.geonames)


class TestClassifyGraph:
    def test_families(self):
        assert classify_graph(
            URIRef("http://sws.geonames.org/3165524/")
        ) == GRAPH_GEONAMES
        assert classify_graph(
            URIRef("http://dbpedia.org/resource/Turin")
        ) == GRAPH_DBPEDIA
        assert classify_graph(
            URIRef("http://www.evri.com/entity/Turin")
        ) == GRAPH_EVRI
        assert classify_graph(
            URIRef("http://linkedgeodata.org/triplify/node1")
        ) == GRAPH_OTHER


class TestCandidate:
    def test_graph_autofilled(self):
        candidate = Candidate(
            resource=DBPR.Turin, label="Turin", score=0.9,
            resolver="x", word="turin",
        )
        assert candidate.graph == GRAPH_DBPEDIA

    def test_score_validated(self):
        with pytest.raises(ValueError):
            Candidate(
                resource=DBPR.Turin, label="T", score=1.5,
                resolver="x", word="t",
            )


class TestDBpediaResolver:
    def test_exact_label_max_score(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Turin")
        assert candidates[0].resource == DBPR.Turin
        assert candidates[0].score == 1.0

    def test_multilingual_label(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Torino", language="it")
        assert candidates
        assert candidates[0].resource == DBPR.Turin

    def test_redirect_followed(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Coliseum")
        resources = [c.resource for c in candidates]
        assert DBPR.Colosseum in resources
        assert DBPR.Coliseum not in resources

    def test_disambiguation_pages_skipped(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Paris")
        resources = {c.resource for c in candidates}
        assert DBPR["Paris_(disambiguation)"] not in resources
        assert DBPR.Paris in resources

    def test_ambiguous_word_multiple_candidates(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Paris")
        resources = {c.resource for c in candidates}
        # the city and the Trojan prince both match
        assert DBPR.Paris in resources
        assert DBPR["Paris_(mythology)"] in resources

    def test_multiword(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Mole Antonelliana")
        assert candidates[0].resource == DBPR.Mole_Antonelliana
        assert candidates[0].score == 1.0

    def test_entity_type_filter(self, corpus, dbpedia_resolver):
        from repro.rdf import DBPO

        typed = dbpedia_resolver.resolve_term(
            "Paris", entity_type=DBPO.City
        )
        assert {c.resource for c in typed} == {DBPR.Paris}

    def test_no_match(self, dbpedia_resolver):
        assert dbpedia_resolver.resolve_term("qwertyuiop") == []

    def test_candidates_sorted_by_score(self, dbpedia_resolver):
        candidates = dbpedia_resolver.resolve_term("Paris")
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)


class TestGeonamesResolver:
    def test_canonical_name(self, geonames_resolver):
        candidates = geonames_resolver.resolve_term("Turin")
        assert candidates[0].resource == geonames_uri(3165524)
        assert candidates[0].entity_type == "place"

    def test_alternate_name(self, geonames_resolver):
        candidates = geonames_resolver.resolve_term("Torino")
        assert candidates
        assert candidates[0].resource == geonames_uri(3165524)
        assert candidates[0].label == "Turin"  # canonical label reported

    def test_population_ranking(self, geonames_resolver):
        rome = geonames_resolver.resolve_term("Rome")[0]
        florence = geonames_resolver.resolve_term("Florence")[0]
        assert rome.score > florence.score

    def test_non_place_no_match(self, geonames_resolver):
        assert geonames_resolver.resolve_term("Colosseum") == []


class TestSindiceResolver:
    def test_cross_graph_results(self, corpus):
        resolver = SindiceResolver(
            [corpus.dbpedia, corpus.geonames, corpus.linkedgeodata]
        )
        candidates = resolver.resolve_term("Turin")
        graphs = {c.graph for c in candidates}
        # candidates refer to several ontologies — the paper's rationale
        # for graph-level (not resolver-level) priorities
        assert GRAPH_DBPEDIA in graphs
        assert GRAPH_GEONAMES in graphs
        assert GRAPH_OTHER in graphs  # linkedgeodata node

    def test_does_not_skip_disambiguation(self, corpus):
        resolver = SindiceResolver([corpus.dbpedia])
        candidates = resolver.resolve_term("Paris")
        resources = {c.resource for c in candidates}
        assert DBPR["Paris_(disambiguation)"] in resources


class TestEvriResolver:
    def test_term_person(self):
        resolver = EvriResolver()
        candidates = resolver.resolve_term("Gaudí")
        assert candidates
        assert candidates[0].entity_type in ("person", "place")

    def test_full_text_finds_multiword_entities(self):
        resolver = EvriResolver()
        candidates = resolver.resolve_text(
            "a picture of the mole antonelliana at night"
        )
        assert any(
            c.resource == EVRIR.Mole_Antonelliana for c in candidates
        )

    def test_full_text_no_partial_match(self):
        resolver = EvriResolver()
        candidates = resolver.resolve_text("the molecular structure")
        assert not any("Mole" in str(c.resource) for c in candidates)

    def test_evri_graph_sameas(self):
        g = build_evri_graph()
        assert (EVRIR.Turin, OWL.sameAs, DBPR.Turin) in g
        assert len(list(g.triples((EVRIR.Turin, RDF.type, None)))) == 1


class TestZemantaResolver:
    def test_full_text_label_scan(self, corpus):
        resolver = ZemantaResolver(corpus.dbpedia)
        candidates = resolver.resolve_text("Visiting the Eiffel Tower")
        assert any(c.resource == DBPR.Eiffel_Tower for c in candidates)

    def test_redirect_label_returned_unresolved(self, corpus):
        resolver = ZemantaResolver(corpus.dbpedia)
        candidates = resolver.resolve_text("inside the Coliseum today")
        resources = {c.resource for c in candidates}
        # Zemanta reports the redirect page; cleanup is the filter's job
        assert DBPR.Coliseum in resources

    def test_longer_matches_score_higher(self, corpus):
        resolver = ZemantaResolver(corpus.dbpedia)
        candidates = resolver.resolve_text(
            "Mole Antonelliana in Turin"
        )
        by_resource = {c.resource: c for c in candidates}
        assert (
            by_resource[DBPR.Mole_Antonelliana].score
            > by_resource[DBPR.Turin].score
        )


class TestBroker:
    def test_empty_resolvers_rejected(self):
        with pytest.raises(ValueError):
            SemanticBroker([])

    def test_per_word_grouping(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(["Turin", "Colosseum"])
        assert set(result.words()) == {"Turin", "Colosseum"}
        assert result.per_word["Turin"]
        assert result.per_word["Colosseum"]

    def test_dedup_keeps_best_score(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(["Turin"])
        resources = [c.resource for c in result.per_word["Turin"]]
        assert len(resources) == len(set(resources))
        turin = next(
            c for c in result.per_word["Turin"]
            if c.resource == DBPR.Turin
        )
        assert turin.score == 1.0  # the DBpedia exact match won the merge

    def test_full_text_candidates(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(
            ["night"], text="mole antonelliana by night"
        )
        assert any(
            "Mole_Antonelliana" in str(c.resource)
            for c in result.full_text
        )

    def test_duplicate_words_resolved_once(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(["Turin", "Turin"])
        assert len(result.per_word) == 1

    def test_all_candidates_flattened(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(["Turin"], text="Turin")
        assert len(result.all_candidates()) >= len(
            result.per_word["Turin"]
        )

    def test_resolver_broker_alias(self):
        from repro.resolvers import ResolverBroker

        assert ResolverBroker is SemanticBroker


class _ExplodingResolver:
    """Raises partway through a word list — after having "yielded"
    nothing — to exercise per-resolver isolation."""

    name = "exploding"
    supports_full_text = True

    def resolve_term(self, word, language=None):
        raise ConnectionError("resolver endpoint down")

    def resolve_text(self, text, language=None):
        raise TimeoutError("full-text endpoint hung")


class TestBrokerIsolation:
    def test_failing_resolver_does_not_lose_healthy_candidates(
        self, corpus
    ):
        healthy = SemanticBroker(default_resolvers(corpus))
        broken = SemanticBroker(
            [_ExplodingResolver()] + default_resolvers(corpus)
        )
        words = ["Turin", "Colosseum"]
        reference = healthy.resolve(words, text="Turin by night")
        result = broken.resolve(words, text="Turin by night")
        # the merge still sees everything the healthy resolvers found
        for word in words:
            assert [c.resource for c in result.per_word[word]] == [
                c.resource for c in reference.per_word[word]
            ]
        assert [c.resource for c in result.full_text] == [
            c.resource for c in reference.full_text
        ]

    def test_failures_recorded_and_degraded_flag(self, corpus):
        broker = SemanticBroker(
            [_ExplodingResolver()] + default_resolvers(corpus)
        )
        result = broker.resolve(["Turin"], text="Turin")
        assert result.degraded
        assert result.failed_resolvers() == ["exploding"]
        # one failure per word plus one for the full-text phase
        assert len(result.failures) == 2
        term_failure = next(
            f for f in result.failures if f.word == "Turin"
        )
        assert term_failure.resolver == "exploding"
        assert "ConnectionError" in term_failure.error
        text_failure = next(
            f for f in result.failures if f.word is None
        )
        assert "TimeoutError" in text_failure.error

    def test_healthy_broker_not_degraded(self, corpus):
        broker = SemanticBroker(default_resolvers(corpus))
        result = broker.resolve(["Turin"])
        assert not result.degraded
        assert result.failures == []

    def test_all_resolvers_failing_yields_empty_candidates(self):
        broker = SemanticBroker([_ExplodingResolver()])
        result = broker.resolve(["Turin"], text="Turin")
        assert result.per_word["Turin"] == []
        assert result.full_text == []
        assert result.degraded


class TestMergeTieBreak:
    @staticmethod
    def _candidate(resolver, score=0.8, resource=DBPR.Turin):
        return Candidate(
            resource=resource, label="Turin", score=score,
            resolver=resolver, word="turin",
        )

    def test_score_tie_resolves_to_smaller_resolver_name(self):
        """Contract: "ties resolve by resolver then resource" — the
        lexicographically *smaller* resolver name wins, regardless of
        arrival order."""
        a = self._candidate("aardvark")
        z = self._candidate("zebra")
        assert SemanticBroker._merge([a, z])[0].resolver == "aardvark"
        assert SemanticBroker._merge([z, a])[0].resolver == "aardvark"

    def test_higher_score_still_beats_resolver_order(self):
        low = self._candidate("aardvark", score=0.5)
        high = self._candidate("zebra", score=0.9)
        merged = SemanticBroker._merge([low, high])
        assert merged[0].resolver == "zebra"
        assert merged[0].score == 0.9

    def test_merge_output_sorted_by_score_then_resource(self):
        first = self._candidate(
            "x", score=0.9, resource=DBPR.Apple
        )
        second = self._candidate(
            "x", score=0.9, resource=DBPR.Banana
        )
        third = self._candidate("x", score=0.5, resource=DBPR.Turin)
        merged = SemanticBroker._merge([third, second, first])
        assert [c.resource for c in merged] == [
            DBPR.Apple, DBPR.Banana, DBPR.Turin
        ]
