"""Tests for the synthetic LOD corpus."""

import pytest

from repro.lod import (
    CITIES,
    POIS,
    build_dbpedia,
    build_geonames,
    build_linkedgeodata,
    build_lod_corpus,
    follow_redirect,
    geonames_uri,
    is_disambiguation_page,
    nearest_city_feature,
)
from repro.rdf import (
    DBPO,
    DBPR,
    GEO,
    GN,
    LGDO,
    LGDP,
    Literal,
    OWL,
    RDF,
    RDFS,
    URIRef,
)
from repro.sparql import Evaluator, Point, parse_point


@pytest.fixture(scope="module")
def corpus():
    return build_lod_corpus()


class TestDBpedia:
    def test_cities_typed(self, corpus):
        assert (DBPR.Turin, RDF.type, DBPO.City) in corpus.dbpedia
        assert (DBPR.Turin, RDF.type, DBPO.Place) in corpus.dbpedia

    def test_multilingual_labels(self, corpus):
        labels = set(corpus.dbpedia.objects(DBPR.Turin, RDFS.label))
        assert Literal("Turin", lang="en") in labels
        assert Literal("Torino", lang="it") in labels

    def test_abstracts(self, corpus):
        abstracts = list(corpus.dbpedia.objects(DBPR.Turin, DBPO.abstract))
        assert any(a.lang == "it" for a in abstracts)

    def test_geometry_parseable(self, corpus):
        geometry = corpus.dbpedia.value(DBPR.Mole_Antonelliana,
                                        GEO.geometry)
        point = parse_point(geometry)
        assert point.latitude == pytest.approx(45.0692)

    def test_poi_located_in_city(self, corpus):
        assert (
            DBPR.Mole_Antonelliana, DBPO.location, DBPR.Turin
        ) in corpus.dbpedia

    def test_commercial_pois_not_in_dbpedia(self, corpus):
        assert not corpus.dbpedia.resource_exists(
            DBPR.Ristorante_Del_Cambio
        )

    def test_redirect_followed(self, corpus):
        assert follow_redirect(
            corpus.dbpedia, DBPR.Coliseum
        ) == DBPR.Colosseum

    def test_redirect_chain_and_identity(self, corpus):
        assert follow_redirect(
            corpus.dbpedia, DBPR.Colosseum
        ) == DBPR.Colosseum

    def test_disambiguation_detection(self, corpus):
        assert is_disambiguation_page(
            corpus.dbpedia, DBPR["Paris_(disambiguation)"]
        )
        assert not is_disambiguation_page(corpus.dbpedia, DBPR.Paris)

    def test_people_present(self, corpus):
        assert (
            DBPR.Alessandro_Antonelli, RDF.type, DBPO.Person
        ) in corpus.dbpedia

    def test_sparql_label_lookup(self, corpus):
        evaluator = Evaluator(corpus.dbpedia)
        result = evaluator.evaluate(
            'SELECT ?r WHERE { ?r rdfs:label "Mole Antonelliana"@it }'
        )
        assert result.first("r") == DBPR.Mole_Antonelliana


class TestGeonames:
    def test_all_cities_present(self, corpus):
        for city in CITIES:
            assert corpus.geonames.resource_exists(
                geonames_uri(city.geonames_id)
            )

    def test_feature_structure(self, corpus):
        turin = geonames_uri(3165524)
        assert (turin, RDF.type, GN.Feature) in corpus.geonames
        assert corpus.geonames.value(turin, GN.name) == Literal("Turin")
        assert (
            corpus.geonames.value(turin, GN.countryCode) == Literal("IT")
        )

    def test_sameas_dbpedia(self, corpus):
        turin = geonames_uri(3165524)
        assert (turin, OWL.sameAs, DBPR.Turin) in corpus.geonames

    def test_nearest_city_feature(self, corpus):
        near_mole = Point(7.6934, 45.0692)
        assert nearest_city_feature(
            corpus.geonames, near_mole
        ) == geonames_uri(3165524)

    def test_nearest_city_feature_rome(self, corpus):
        assert nearest_city_feature(
            corpus.geonames, Point(12.49, 41.89)
        ) == geonames_uri(3169070)


class TestLinkedGeoData:
    def test_city_nodes_typed(self, corpus):
        result = Evaluator(corpus.linkedgeodata).evaluate(
            "SELECT ?c WHERE { ?c a lgdo:City }"
        )
        assert len(result) == len(CITIES)

    def test_restaurants_have_websites(self, corpus):
        result = Evaluator(corpus.linkedgeodata).evaluate(
            """SELECT ?r ?w WHERE {
                 ?r a lgdo:Restaurant .
                 ?r <http://linkedgeodata.org/property/website> ?w .
               }"""
        )
        assert len(result) >= 4

    def test_tourism_typing(self, corpus):
        result = Evaluator(corpus.linkedgeodata).evaluate(
            "SELECT ?t WHERE { ?t a lgdo:Tourism }"
        )
        tourism_count = sum(
            1 for p in POIS
            if p.category in ("monument", "museum", "church", "park",
                              "fountain", "stadium")
        )
        assert len(result) == tourism_count

    def test_label_join_with_dbpedia(self, corpus):
        # the mashup's first branch joins lgdo:City to dbpo:Place by label
        union = corpus.union()
        result = Evaluator(union).evaluate(
            """SELECT DISTINCT ?desc WHERE {
                 ?city a lgdo:City .
                 ?city rdfs:label ?lbl .
                 ?others rdfs:label ?lbl .
                 ?others dbpo:abstract ?desc .
                 ?others a dbpo:Place .
                 FILTER langMatches(lang(?desc), 'it') .
                 FILTER (?lbl = "Torino"@it) .
               }"""
        )
        assert len(result) == 1


class TestCorpus:
    def test_union_contains_all(self, corpus):
        union = corpus.union()
        assert len(union) == (
            len(corpus.dbpedia) + len(corpus.geonames)
            + len(corpus.linkedgeodata)
        )

    def test_as_dataset_named_graphs(self, corpus):
        ds = corpus.as_dataset()
        assert "http://dbpedia.org" in ds
        assert "http://sws.geonames.org" in ds
        assert "http://linkedgeodata.org" in ds

    def test_cached_instance_reused(self):
        assert build_lod_corpus() is build_lod_corpus()
        assert build_lod_corpus(cached=False) is not build_lod_corpus()

    def test_deterministic(self):
        a = build_lod_corpus(cached=False)
        b = build_lod_corpus(cached=False)
        assert set(a.dbpedia.triples()) == set(b.dbpedia.triples())
