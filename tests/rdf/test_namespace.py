"""Tests for namespaces and the prefix manager."""

import pytest

from repro.rdf import (
    DBPO,
    FOAF,
    GEO,
    Namespace,
    NamespaceManager,
    RDFS,
    SIOCT,
    URIRef,
)


class TestNamespace:
    def test_attribute_access(self):
        assert FOAF.name == URIRef("http://xmlns.com/foaf/0.1/name")

    def test_item_access(self):
        assert FOAF["maker"] == URIRef("http://xmlns.com/foaf/0.1/maker")

    def test_integer_index_still_works(self):
        # Namespace subclasses str; numeric indexing must be preserved.
        assert Namespace("abc")[0] == "a"

    def test_contains_uri(self):
        assert str(FOAF.name) in FOAF
        assert "http://other.org/x" not in FOAF

    def test_paper_vocabularies(self):
        assert SIOCT.MicroblogPost == URIRef(
            "http://rdfs.org/sioc/types#MicroblogPost"
        )
        assert GEO.geometry == URIRef(
            "http://www.w3.org/2003/01/geo/wgs84_pos#geometry"
        )
        assert DBPO.Place == URIRef("http://dbpedia.org/ontology/Place")


class TestNamespaceManager:
    def test_defaults_bound(self):
        nsm = NamespaceManager()
        assert nsm.expand("foaf:knows") == FOAF.knows
        assert nsm.expand("rdfs:label") == RDFS.label

    def test_expand_unknown_prefix(self):
        nsm = NamespaceManager()
        with pytest.raises(KeyError):
            nsm.expand("nope:x")

    def test_bind_and_expand(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("ex", "http://example.org/")
        assert nsm.expand("ex:a") == URIRef("http://example.org/a")

    def test_compact_prefers_longest_namespace(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("a", "http://example.org/")
        nsm.bind("b", "http://example.org/deep/")
        assert nsm.compact("http://example.org/deep/x") == "b:x"

    def test_compact_refuses_slashy_local(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("ex", "http://example.org/")
        assert nsm.compact("http://example.org/a/b") is None

    def test_compact_unknown(self):
        nsm = NamespaceManager(bind_defaults=False)
        assert nsm.compact("http://nowhere/x") is None

    def test_rebind_replaces(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("ex", "http://one/")
        nsm.bind("ex", "http://two/")
        assert nsm.expand("ex:a") == URIRef("http://two/a")
        assert nsm.compact("http://one/a") is None

    def test_bind_no_replace(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("ex", "http://one/")
        nsm.bind("ex", "http://two/", replace=False)
        assert nsm.expand("ex:a") == URIRef("http://one/a")

    def test_iteration_sorted(self):
        nsm = NamespaceManager(bind_defaults=False)
        nsm.bind("z", "http://z/")
        nsm.bind("a", "http://a/")
        assert [p for p, _ in nsm] == ["a", "z"]

    def test_contains(self):
        nsm = NamespaceManager()
        assert "foaf" in nsm
        assert "nope" not in nsm
