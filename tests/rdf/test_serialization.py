"""Tests for N-Triples and Turtle parsing/serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    BNode,
    FOAF,
    Graph,
    Literal,
    NTriplesError,
    RDF,
    RDFS,
    TurtleError,
    URIRef,
    load_ntriples,
    load_turtle,
    parse_ntriples,
    serialize_ntriples,
    serialize_triple,
    serialize_turtle,
)
from repro.rdf.ntriples import parse_ntriples_line

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


class TestNTriplesParsing:
    def test_simple_triple(self):
        triple = parse_ntriples_line(
            "<http://x/s> <http://x/p> <http://x/o> ."
        )
        assert triple == (URIRef("http://x/s"), URIRef("http://x/p"),
                          URIRef("http://x/o"))

    def test_plain_literal(self):
        _, _, o = parse_ntriples_line('<http://x/s> <http://x/p> "hello" .')
        assert o == Literal("hello")

    def test_lang_literal(self):
        _, _, o = parse_ntriples_line(
            '<http://x/s> <http://x/p> "Mole Antonelliana"@it .'
        )
        assert o == Literal("Mole Antonelliana", lang="it")

    def test_typed_literal(self):
        _, _, o = parse_ntriples_line(
            '<http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .'
        )
        assert o.value == 5

    def test_bnode_subject_and_object(self):
        s, _, o = parse_ntriples_line("_:a <http://x/p> _:b .")
        assert s == BNode("a")
        assert o == BNode("b")

    def test_escaped_quote_in_literal(self):
        _, _, o = parse_ntriples_line(
            '<http://x/s> <http://x/p> "say \\"hi\\"" .'
        )
        assert o.lexical == 'say "hi"'

    def test_comments_and_blank_lines_skipped(self):
        doc = "\n# comment\n<http://x/s> <http://x/p> <http://x/o> .\n\n"
        assert len(list(parse_ntriples(doc))) == 1

    def test_missing_dot_rejected(self):
        with pytest.raises(NTriplesError):
            parse_ntriples_line("<http://x/s> <http://x/p> <http://x/o>")

    def test_garbage_rejected_with_line_number(self):
        with pytest.raises(NTriplesError) as err:
            list(parse_ntriples("good line is not rdf"))
        assert "line 1" in str(err.value)

    def test_literal_as_subject_rejected(self):
        with pytest.raises(NTriplesError):
            parse_ntriples_line('"lit" <http://x/p> <http://x/o> .')

    def test_trailing_comment_allowed(self):
        triple = parse_ntriples_line(
            "<http://x/s> <http://x/p> <http://x/o> . # trailing"
        )
        assert triple[0] == URIRef("http://x/s")


class TestNTriplesRoundtrip:
    def _graph(self):
        g = Graph()
        g.add((ex("alice"), FOAF.name, Literal("Alice Wonderland")))
        g.add((ex("alice"), FOAF.age, Literal(30)))
        g.add((ex("mole"), RDFS.label, Literal("Mole Antonelliana", lang="it")))
        g.add((ex("alice"), FOAF.knows, BNode("someone")))
        g.add((ex("weird"), RDFS.label, Literal('quote " and \n newline')))
        return g

    def test_roundtrip(self):
        g = self._graph()
        text = serialize_ntriples(g)
        g2 = load_ntriples(text)
        assert set(g2.triples()) == set(g.triples())

    def test_serialization_deterministic(self):
        g = self._graph()
        assert serialize_ntriples(g) == serialize_ntriples(g.copy())

    def test_serialize_triple_line(self):
        line = serialize_triple((ex("s"), ex("p"), Literal("o")))
        assert line == '<http://example.org/s> <http://example.org/p> "o" .'

    def test_empty_graph_serializes_empty(self):
        assert serialize_ntriples(Graph()) == ""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([ex(c) for c in "abc"]),
                st.sampled_from([ex(c) for c in "pq"]),
                st.one_of(
                    st.sampled_from([ex(c) for c in "xyz"]),
                    st.builds(
                        Literal,
                        st.text(min_size=0, max_size=20),
                    ),
                    st.builds(
                        Literal,
                        st.text(min_size=1, max_size=10),
                        lang=st.sampled_from(["en", "it", "fr"]),
                    ),
                    st.builds(Literal, st.integers(-1000, 1000)),
                ),
            ),
            max_size=30,
        )
    )
    def test_roundtrip_property(self, triples):
        g = Graph()
        g.add_all(triples)
        g2 = load_ntriples(serialize_ntriples(g))
        assert set(g2.triples()) == set(g.triples())


class TestTurtle:
    def test_serialize_groups_subject(self):
        g = Graph()
        g.add((ex("alice"), FOAF.name, Literal("Alice")))
        g.add((ex("alice"), RDF.type, FOAF.Person))
        text = serialize_turtle(g)
        assert text.count("example.org/alice") == 1
        assert "a foaf:Person" in text
        assert '@prefix foaf:' in text

    def test_parse_prefixed(self):
        text = """
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        @prefix ex: <http://example.org/> .
        ex:alice a foaf:Person ;
            foaf:name "Alice" ;
            foaf:knows ex:bob, ex:carol .
        """
        g = load_turtle(text)
        assert len(g) == 4
        assert (ex("alice"), FOAF.knows, ex("carol")) in g

    def test_parse_numbers_and_booleans(self):
        text = '@prefix ex: <http://example.org/> .\n' \
               'ex:s ex:count 42 ; ex:score 4.5 ; ex:ok true .'
        g = load_turtle(text)
        assert g.value(ex("s"), ex("count")).value == 42
        assert g.value(ex("s"), ex("score")).value == 4.5
        assert g.value(ex("s"), ex("ok")).value is True

    def test_parse_lang_and_typed_literals(self):
        text = (
            "@prefix ex: <http://example.org/> .\n"
            "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
            'ex:mole ex:label "Mole"@it ; ex:height "167.5"^^xsd:double .'
        )
        g = load_turtle(text)
        assert g.value(ex("mole"), ex("label")).lang == "it"
        assert g.value(ex("mole"), ex("height")).value == 167.5

    def test_roundtrip(self):
        g = Graph()
        g.add((ex("alice"), FOAF.name, Literal("Alice")))
        g.add((ex("alice"), FOAF.age, Literal(30)))
        g.add((ex("alice"), RDF.type, FOAF.Person))
        g.add((ex("mole"), RDFS.label, Literal("Mole", lang="it")))
        g2 = load_turtle(serialize_turtle(g))
        assert set(g2.triples()) == set(g.triples())

    def test_unknown_prefix_rejected(self):
        with pytest.raises(TurtleError):
            load_turtle("nope:s nope:p nope:o .")

    def test_literal_predicate_rejected(self):
        with pytest.raises(TurtleError):
            load_turtle('<http://x/s> "lit" <http://x/o> .')

    def test_sparql_style_prefix(self):
        text = 'PREFIX ex: <http://example.org/>\nex:a ex:p ex:b .'
        g = load_turtle(text)
        assert (ex("a"), ex("p"), ex("b")) in g
