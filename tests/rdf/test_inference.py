"""RDFS inference tests."""

import pytest

from repro.lod import build_lod_corpus, build_ontology
from repro.rdf import (
    DBPO,
    DBPR,
    FOAF,
    Graph,
    LGDO,
    Literal,
    RDF,
    RDFS,
    URIRef,
    entails,
    rdfs_closure,
)
from repro.sparql import Evaluator

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


class TestClosureRules:
    def test_rdfs9_type_inheritance(self):
        g = Graph()
        g.add((ex("City"), RDFS.subClassOf, ex("Place")))
        g.add((ex("turin"), RDF.type, ex("City")))
        added = rdfs_closure(g)
        assert (ex("turin"), RDF.type, ex("Place")) in g
        assert added == 1

    def test_rdfs11_subclass_transitivity(self):
        g = Graph()
        g.add((ex("A"), RDFS.subClassOf, ex("B")))
        g.add((ex("B"), RDFS.subClassOf, ex("C")))
        g.add((ex("x"), RDF.type, ex("A")))
        rdfs_closure(g)
        assert (ex("x"), RDF.type, ex("C")) in g

    def test_rdfs7_property_inheritance(self):
        g = Graph()
        g.add((ex("bestFriend"), RDFS.subPropertyOf, FOAF.knows))
        g.add((ex("a"), ex("bestFriend"), ex("b")))
        rdfs_closure(g)
        assert (ex("a"), FOAF.knows, ex("b")) in g

    def test_rdfs5_subproperty_transitivity(self):
        g = Graph()
        g.add((ex("p"), RDFS.subPropertyOf, ex("q")))
        g.add((ex("q"), RDFS.subPropertyOf, ex("r")))
        g.add((ex("a"), ex("p"), ex("b")))
        rdfs_closure(g)
        assert (ex("a"), ex("r"), ex("b")) in g

    def test_rdfs2_domain(self):
        g = Graph()
        g.add((FOAF.knows, RDFS.domain, FOAF.Person))
        g.add((ex("a"), FOAF.knows, ex("b")))
        rdfs_closure(g)
        assert (ex("a"), RDF.type, FOAF.Person) in g

    def test_rdfs3_range_skips_literals(self):
        g = Graph()
        g.add((ex("p"), RDFS.range, ex("C")))
        g.add((ex("a"), ex("p"), ex("b")))
        g.add((ex("a"), ex("p"), Literal("text")))
        rdfs_closure(g)
        assert (ex("b"), RDF.type, ex("C")) in g
        assert (Literal("text"), RDF.type, ex("C")) not in g

    def test_external_schema(self):
        schema = Graph()
        schema.add((ex("City"), RDFS.subClassOf, ex("Place")))
        data = Graph()
        data.add((ex("turin"), RDF.type, ex("City")))
        rdfs_closure(data, schema)
        assert (ex("turin"), RDF.type, ex("Place")) in data

    def test_fixed_point_idempotent(self):
        g = Graph()
        g.add((ex("A"), RDFS.subClassOf, ex("B")))
        g.add((ex("x"), RDF.type, ex("A")))
        rdfs_closure(g)
        assert rdfs_closure(g) == 0

    def test_cycle_terminates(self):
        g = Graph()
        g.add((ex("A"), RDFS.subClassOf, ex("B")))
        g.add((ex("B"), RDFS.subClassOf, ex("A")))
        g.add((ex("x"), RDF.type, ex("A")))
        rdfs_closure(g)
        assert (ex("x"), RDF.type, ex("B")) in g

    def test_entails_nondestructive(self):
        g = Graph()
        g.add((ex("City"), RDFS.subClassOf, ex("Place")))
        g.add((ex("turin"), RDF.type, ex("City")))
        before = len(g)
        assert entails(g, (ex("turin"), RDF.type, ex("Place")))
        assert not entails(g, (ex("turin"), RDF.type, ex("Galaxy")))
        assert len(g) == before


class TestOntologyOverCorpus:
    def test_inference_backed_album_query(self):
        """The §2.3 claim: queries can rely on inference. Strip the
        redundant dbpo:Place typing, infer it back via the ontology."""
        corpus = build_lod_corpus(cached=False)
        corpus.dbpedia.remove((None, RDF.type, DBPO.Place))
        evaluator = Evaluator(corpus.dbpedia)
        result = evaluator.evaluate(
            "SELECT ?p WHERE { ?p a dbpo:Place }"
        )
        assert len(result) == 0

        rdfs_closure(corpus.dbpedia, build_ontology())
        result = Evaluator(corpus.dbpedia).evaluate(
            "SELECT ?p WHERE { ?p a dbpo:Place }"
        )
        assert DBPR.Turin in {r["p"] for r in result}
        assert DBPR.Mole_Antonelliana in {r["p"] for r in result}

    def test_lgdo_tourism_inferred(self):
        corpus = build_lod_corpus(cached=False)
        corpus.linkedgeodata.remove((None, RDF.type, LGDO.Tourism))
        rdfs_closure(corpus.linkedgeodata, build_ontology())
        result = Evaluator(corpus.linkedgeodata).evaluate(
            "SELECT ?t WHERE { ?t a lgdo:Tourism }"
        )
        assert len(result) > 0

    def test_birthplace_domain_range(self):
        schema = build_ontology()
        g = Graph()
        g.add((DBPR.Giuseppe_Verdi, DBPO.birthPlace, DBPR.Milan))
        rdfs_closure(g, schema)
        assert (DBPR.Giuseppe_Verdi, RDF.type, DBPO.Person) in g
        assert (DBPR.Milan, RDF.type, DBPO.Place) in g
