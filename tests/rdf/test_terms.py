"""Unit tests for the RDF term model."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf.terms import (
    BNode,
    Literal,
    URIRef,
    Variable,
    XSD_BOOLEAN,
    XSD_DOUBLE,
    XSD_INTEGER,
    XSD_STRING,
    escape_literal,
    term_from_python,
    unescape_literal,
)


class TestURIRef:
    def test_n3(self):
        assert URIRef("http://example.org/a").n3() == "<http://example.org/a>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            URIRef("")

    def test_equality_with_same_uri(self):
        assert URIRef("http://x/a") == URIRef("http://x/a")

    def test_inequality_with_literal_of_same_text(self):
        assert URIRef("http://x/a") != Literal("http://x/a")

    def test_hash_distinct_from_plain_string_literal(self):
        # URIRef and Literal with equal text must not collide as dict keys.
        d = {URIRef("http://x/a"): 1, Literal("http://x/a"): 2}
        assert len(d) == 2

    def test_defrag(self):
        assert URIRef("http://x/a#frag").defrag() == URIRef("http://x/a")

    def test_local_name_hash(self):
        assert URIRef("http://x/v#name").local_name() == "name"

    def test_local_name_slash(self):
        assert URIRef("http://dbpedia.org/resource/Turin").local_name() == "Turin"

    def test_is_str_subclass(self):
        assert URIRef("http://x/a").startswith("http://")


class TestBNode:
    def test_fresh_labels_unique(self):
        assert BNode() != BNode()

    def test_explicit_label(self):
        assert BNode("n1") == BNode("n1")

    def test_n3(self):
        assert BNode("n1").n3() == "_:n1"

    def test_not_equal_uriref(self):
        assert BNode("a") != URIRef("a")


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert lit.lexical == "hello"
        assert lit.lang is None
        assert lit.datatype is None
        assert lit.n3() == '"hello"'

    def test_lang(self):
        lit = Literal("Mole Antonelliana", lang="it")
        assert lit.n3() == '"Mole Antonelliana"@it'

    def test_lang_normalized_lowercase(self):
        assert Literal("x", lang="IT").lang == "it"

    def test_invalid_lang_rejected(self):
        with pytest.raises(ValueError):
            Literal("x", lang="not a lang")

    def test_lang_and_datatype_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Literal("x", lang="en", datatype=XSD_STRING)

    def test_int_coercion(self):
        lit = Literal(42)
        assert lit.datatype == XSD_INTEGER
        assert lit.value == 42
        assert lit.is_numeric

    def test_float_coercion(self):
        lit = Literal(1.5)
        assert lit.datatype == XSD_DOUBLE
        assert lit.value == 1.5

    def test_bool_coercion(self):
        lit = Literal(True)
        assert lit.datatype == XSD_BOOLEAN
        assert lit.value is True
        assert lit.lexical == "true"

    def test_bad_numeric_lexical_falls_back(self):
        lit = Literal("abc", datatype=XSD_INTEGER)
        assert lit.value == "abc"
        assert not lit.is_numeric

    def test_equality_value_vs_typed(self):
        assert Literal(3) == 3
        assert Literal("3", datatype=XSD_INTEGER) == 3
        assert Literal("3") != 3  # plain literal is not a number

    def test_lang_literals_distinct(self):
        assert Literal("Turin", lang="en") != Literal("Turin", lang="it")
        assert Literal("Turin", lang="en") != Literal("Turin")

    def test_immutable(self):
        lit = Literal("x")
        with pytest.raises(AttributeError):
            lit.lexical = "y"

    def test_escaping_in_n3(self):
        lit = Literal('say "hi"\n')
        assert lit.n3() == '"say \\"hi\\"\\n"'

    def test_numeric_sorting_by_value(self):
        assert Literal(2) < Literal(10)
        assert Literal("2", datatype=XSD_INTEGER) < Literal(10.5)

    def test_str_returns_lexical(self):
        assert str(Literal("abc", lang="en")) == "abc"


class TestVariable:
    def test_strips_question_mark(self):
        assert Variable("?x") == Variable("x")

    def test_strips_dollar(self):
        assert Variable("$x") == Variable("x")

    def test_n3(self):
        assert Variable("link").n3() == "?link"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Variable("?")


class TestOrdering:
    def test_sparql_term_order(self):
        # blank nodes < IRIs < literals
        assert BNode("z") < URIRef("http://a")
        assert URIRef("http://z") < Literal("a")

    def test_sorting_is_deterministic(self):
        terms = [Literal("b"), URIRef("http://a"), BNode("x"), Literal(5)]
        assert sorted(terms) == sorted(reversed(terms))


class TestEscaping:
    @given(st.text())
    def test_escape_roundtrip(self, text):
        assert unescape_literal(escape_literal(text)) == text

    def test_unicode_escape(self):
        assert unescape_literal("\\u00e9") == "é"
        assert unescape_literal("\\U0001F600") == "😀"

    def test_dangling_escape_rejected(self):
        with pytest.raises(ValueError):
            unescape_literal("abc\\")

    def test_unknown_escape_rejected(self):
        with pytest.raises(ValueError):
            unescape_literal("\\q")


class TestTermFromPython:
    def test_passthrough(self):
        uri = URIRef("http://x/a")
        assert term_from_python(uri) is uri

    def test_string_becomes_plain_literal(self):
        term = term_from_python("hello")
        assert isinstance(term, Literal)
        assert term.datatype is None

    def test_int(self):
        assert term_from_python(7) == Literal(7)

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            term_from_python(object())
