"""Unit and property tests for the indexed triple store."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    FOAF,
    Graph,
    Dataset,
    Literal,
    RDF,
    RDFS,
    SIOCT,
    URIRef,
)

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


@pytest.fixture
def small_graph():
    g = Graph()
    g.add((ex("alice"), FOAF.name, Literal("Alice")))
    g.add((ex("alice"), FOAF.knows, ex("bob")))
    g.add((ex("bob"), FOAF.name, Literal("Bob")))
    g.add((ex("bob"), RDF.type, FOAF.Person))
    g.add((ex("alice"), RDF.type, FOAF.Person))
    return g


class TestMutation:
    def test_add_and_len(self, small_graph):
        assert len(small_graph) == 5

    def test_duplicate_add_is_noop(self, small_graph):
        small_graph.add((ex("alice"), FOAF.name, Literal("Alice")))
        assert len(small_graph) == 5

    def test_string_values_coerced(self):
        g = Graph()
        g.add((EX + "s", EX + "p", "object text"))
        s, p, o = next(iter(g))
        assert isinstance(s, URIRef)
        assert isinstance(o, Literal)

    def test_remove_exact(self, small_graph):
        removed = small_graph.remove((ex("alice"), FOAF.knows, ex("bob")))
        assert removed == 1
        assert len(small_graph) == 4

    def test_remove_wildcard(self, small_graph):
        removed = small_graph.remove((ex("alice"), None, None))
        assert removed == 3
        assert len(small_graph) == 2

    def test_remove_nonexistent(self, small_graph):
        assert small_graph.remove((ex("zed"), None, None)) == 0
        assert len(small_graph) == 5

    def test_clear(self, small_graph):
        small_graph.clear()
        assert len(small_graph) == 0
        assert list(small_graph) == []

    def test_remove_keeps_indexes_consistent(self, small_graph):
        small_graph.remove((None, FOAF.name, None))
        # after removal both index directions must agree
        assert list(small_graph.triples((None, FOAF.name, None))) == []
        assert not any(
            p == FOAF.name for _, p, _ in small_graph.triples()
        )

    def test_predicate_must_be_uri(self):
        g = Graph()
        from repro.rdf import BNode

        with pytest.raises(TypeError):
            g.add((ex("s"), BNode(), ex("o")))


class TestPatternMatching:
    def test_fully_bound_hit(self, small_graph):
        triples = list(
            small_graph.triples((ex("bob"), FOAF.name, Literal("Bob")))
        )
        assert len(triples) == 1

    def test_fully_bound_miss(self, small_graph):
        assert (
            list(small_graph.triples((ex("bob"), FOAF.name, Literal("X"))))
            == []
        )

    def test_s_bound(self, small_graph):
        assert len(list(small_graph.triples((ex("alice"), None, None)))) == 3

    def test_p_bound(self, small_graph):
        assert len(list(small_graph.triples((None, FOAF.name, None)))) == 2

    def test_o_bound(self, small_graph):
        assert len(list(small_graph.triples((None, None, FOAF.Person)))) == 2

    def test_sp_bound(self, small_graph):
        assert (
            len(list(small_graph.triples((ex("alice"), RDF.type, None)))) == 1
        )

    def test_po_bound(self, small_graph):
        matches = list(small_graph.triples((None, RDF.type, FOAF.Person)))
        assert {s for s, _, _ in matches} == {ex("alice"), ex("bob")}

    def test_so_bound(self, small_graph):
        matches = list(small_graph.triples((ex("alice"), None, ex("bob"))))
        assert matches == [(ex("alice"), FOAF.knows, ex("bob"))]

    def test_contains_with_wildcard(self, small_graph):
        assert (ex("alice"), None, None) in small_graph
        assert (ex("zed"), None, None) not in small_graph

    def test_count(self, small_graph):
        assert small_graph.count() == 5
        assert small_graph.count((None, RDF.type, None)) == 2


class TestAccessors:
    def test_subjects_deduplicated(self, small_graph):
        assert len(list(small_graph.subjects(RDF.type, FOAF.Person))) == 2

    def test_objects(self, small_graph):
        objs = set(small_graph.objects(ex("alice"), FOAF.knows))
        assert objs == {ex("bob")}

    def test_predicates(self, small_graph):
        preds = set(small_graph.predicates(ex("alice")))
        assert preds == {FOAF.name, FOAF.knows, RDF.type}

    def test_value_found(self, small_graph):
        assert small_graph.value(ex("bob"), FOAF.name) == Literal("Bob")

    def test_value_default(self, small_graph):
        assert small_graph.value(ex("bob"), FOAF.nick, default="?") == "?"

    def test_value_requires_two_bound(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.value(ex("bob"))

    def test_label_language_preference(self):
        g = Graph()
        g.add((ex("mole"), RDFS.label, Literal("Mole Antonelliana", lang="it")))
        g.add((ex("mole"), RDFS.label, Literal("Mole Antonelliana Tower", lang="en")))
        label = g.label(ex("mole"), lang="en")
        assert label.lang == "en"

    def test_label_fallback_any(self):
        g = Graph()
        g.add((ex("x"), RDFS.label, Literal("solo", lang="fr")))
        assert g.label(ex("x"), lang="en") == Literal("solo", lang="fr")

    def test_types(self, small_graph):
        assert small_graph.types(ex("bob")) == {FOAF.Person}

    def test_resource_exists(self, small_graph):
        assert small_graph.resource_exists(ex("alice"))
        assert not small_graph.resource_exists(ex("nobody"))

    def test_copy_independent(self, small_graph):
        dup = small_graph.copy()
        dup.add((ex("new"), FOAF.name, Literal("New")))
        assert len(dup) == len(small_graph) + 1


class TestDataset:
    def test_named_graph_created_on_demand(self):
        ds = Dataset()
        g = ds.graph("urn:graph:dbpedia")
        assert "urn:graph:dbpedia" in ds
        assert g is ds.graph("urn:graph:dbpedia")

    def test_union_graph_merges(self):
        ds = Dataset()
        ds.default.add((ex("a"), FOAF.name, Literal("A")))
        ds.graph("urn:g1").add((ex("b"), FOAF.name, Literal("B")))
        ds.graph("urn:g2").add((ex("c"), FOAF.name, Literal("C")))
        assert len(ds.union_graph()) == 3
        assert len(ds) == 3

    def test_union_deduplicates(self):
        ds = Dataset()
        triple = (ex("a"), FOAF.name, Literal("A"))
        ds.default.add(triple)
        ds.graph("urn:g1").add(triple)
        assert len(ds.union_graph()) == 1

    def test_remove_graph(self):
        ds = Dataset()
        ds.graph("urn:g1").add((ex("a"), FOAF.name, Literal("A")))
        assert ds.remove_graph("urn:g1")
        assert not ds.remove_graph("urn:g1")
        assert len(ds) == 0


class TestInsert:
    def test_insert_reports_newness(self):
        g = Graph()
        assert g.insert((ex("a"), FOAF.name, Literal("A"))) is True
        assert g.insert((ex("a"), FOAF.name, Literal("A"))) is False
        assert len(g) == 1

    def test_insert_coerces_like_add(self):
        g = Graph()
        assert g.insert((EX + "a", FOAF.name, "A")) is True
        assert (ex("a"), FOAF.name, Literal("A")) in g

    def test_duplicate_insert_does_not_bump_version(self):
        g = Graph()
        g.insert((ex("a"), FOAF.name, Literal("A")))
        version = g._version
        g.insert((ex("a"), FOAF.name, Literal("A")))
        assert g._version == version


class TestFrozenGraph:
    def test_union_graph_is_read_only(self):
        from repro.rdf import FrozenGraph, FrozenGraphError

        ds = Dataset()
        ds.default.add((ex("a"), FOAF.name, Literal("A")))
        union = ds.union_graph()
        assert isinstance(union, FrozenGraph)
        for mutate in (
            lambda: union.add((ex("b"), FOAF.name, Literal("B"))),
            lambda: union.insert((ex("b"), FOAF.name, Literal("B"))),
            lambda: union.add_all([(ex("b"), FOAF.name, Literal("B"))]),
            lambda: union.remove((None, None, None)),
            lambda: union.clear(),
        ):
            with pytest.raises(FrozenGraphError):
                mutate()
        assert len(union) == 1  # nothing got through

    def test_frozen_graph_error_is_type_error(self):
        # callers that guarded with TypeError keep working
        from repro.rdf import FrozenGraphError

        assert issubclass(FrozenGraphError, TypeError)

    def test_freeze_is_zero_copy_view(self):
        from repro.rdf import freeze

        g = Graph()
        g.add((ex("a"), FOAF.name, Literal("A")))
        frozen = freeze(g)
        assert set(frozen.triples()) == set(g.triples())
        assert frozen._spo is g._spo  # shared indexes, no copy

    def test_freeze_idempotent(self):
        from repro.rdf import freeze

        frozen = freeze(Graph())
        assert freeze(frozen) is frozen

    def test_copy_thaws(self):
        ds = Dataset()
        ds.default.add((ex("a"), FOAF.name, Literal("A")))
        union = ds.union_graph()
        thawed = union.copy()
        thawed.add((ex("b"), FOAF.name, Literal("B")))
        assert len(thawed) == 2
        assert len(union) == 1

    def test_frozen_reads_still_work(self):
        ds = Dataset()
        ds.default.add((ex("a"), FOAF.name, Literal("A")))
        ds.default.add((ex("a"), RDF.type, FOAF.Person))
        union = ds.union_graph()
        assert union.value(ex("a"), FOAF.name) == Literal("A")
        assert union.types(ex("a")) == {FOAF.Person}
        assert union.count() == 2
        assert "FrozenGraph" in repr(union)


# ---------------------------------------------------------------------------
# Property-based tests on index consistency
# ---------------------------------------------------------------------------

_uris = st.sampled_from([ex(n) for n in "abcdefgh"])
_triples = st.tuples(_uris, _uris, _uris)


@given(st.lists(_triples, max_size=60))
def test_size_matches_distinct_triples(triples):
    g = Graph()
    g.add_all(triples)
    assert len(g) == len(set(triples))


@given(st.lists(_triples, max_size=40), st.lists(_triples, max_size=40))
def test_remove_then_query_consistent(to_add, to_remove):
    g = Graph()
    g.add_all(to_add)
    for t in to_remove:
        g.remove(t)
    expected = set(to_add) - set(to_remove)
    assert set(g.triples()) == expected
    assert len(g) == len(expected)


@given(st.lists(_triples, min_size=1, max_size=50))
def test_every_access_path_agrees(triples):
    g = Graph()
    g.add_all(triples)
    for s, p, o in set(triples):
        assert (s, p, o) in g
        assert o in set(g.objects(s, p))
        assert s in set(g.subjects(p, o))
        assert p in set(g.predicates(s, o))
