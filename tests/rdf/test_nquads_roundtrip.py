"""Property tests: the N-Quads writer/parser pair is a round-trip.

The store's WAL and snapshot files persist every quad through
``serialize_quad`` and read it back through ``parse_nquads_line``, so
the pair must be lossless for *every* term the rest of the codebase can
construct — literals containing newlines, quotes and backslashes,
control characters, IRIs with spaces or angle brackets, and arbitrary
blank-node labels. Two properties cover this:

* exact round-trip — for terms the grammar can represent verbatim,
  ``parse(serialize(q)) == q``;
* serialization fixpoint — blank-node labels outside the N-Triples
  grammar are rewritten to a deterministic ``N<sha1>`` form, so while
  ``parse(serialize(q))`` may differ from ``q``, serializing the parsed
  quad reproduces the same line byte-for-byte (a second store restart
  reads exactly what the first one wrote).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.rdf.graph import Dataset
from repro.rdf.nquads import (
    load_nquads,
    parse_nquads_line,
    serialize_nquads,
    serialize_quad,
)
from repro.rdf.terms import BNode, Literal, URIRef

# Strings that historically broke the writer/parser pair: raw
# newlines, quotes, backslashes (alone and doubled), C0 controls,
# lone surrogates, and the unicode line separators that must *not*
# split statements.
_NASTY = st.sampled_from([
    "\n",
    "\r\n",
    '"',
    "\\",
    "\\\\",
    '\\"',
    'she said "hi\\there"\n',
    "tab\there",
    "nul\x00byte",
    "\x1f\x01",
    "\ud800",
    "pre\udfffpost",
    "line sepnext",
    "é caf\xe9 ♫",
])

_text = st.one_of(st.text(max_size=30), _NASTY)
_nonempty_text = _text.filter(bool)

_iris = st.builds(
    URIRef, st.one_of(st.just("http://ex.org/"), _nonempty_text)
)

# Labels the N-Triples grammar represents verbatim (see
# ``_BNODE_LABEL_RE`` in repro.rdf.terms).
_safe_bnodes = st.builds(
    BNode, st.from_regex(r"[A-Za-z0-9][A-Za-z0-9._-]{0,12}",
                         fullmatch=True)
)
_any_bnodes = st.builds(BNode, _nonempty_text)

_langs = st.from_regex(
    r"[a-zA-Z]{1,8}(?:-[a-zA-Z0-9]{1,8}){0,2}", fullmatch=True
)

_literals = st.one_of(
    st.builds(Literal, _text),
    st.builds(Literal, _text, lang=_langs),
    st.builds(Literal, _text, datatype=_iris),
)

_graphs = st.one_of(st.none(), _iris)


def _quads(subjects):
    return st.tuples(
        subjects,
        _iris,
        st.one_of(_iris, subjects, _literals),
        _graphs,
    )


_exact_quads = _quads(st.one_of(_iris, _safe_bnodes))
_any_quads = _quads(st.one_of(_iris, _any_bnodes))

_settings = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestQuadRoundTrip:
    @given(quad=_exact_quads)
    @_settings
    def test_parse_inverts_serialize(self, quad):
        line = serialize_quad(quad)
        assert "\n" not in line  # one statement, one line — always
        parsed = parse_nquads_line(line)
        assert parsed == quad
        for term, back in zip(quad, parsed):
            assert type(back) is type(term)

    @given(quad=_any_quads)
    @_settings
    def test_serialization_is_a_fixpoint(self, quad):
        line = serialize_quad(quad)
        assert serialize_quad(parse_nquads_line(line)) == line

    @given(label=_nonempty_text)
    @_settings
    def test_bnode_sanitization_is_deterministic(self, label):
        # the same source label maps to the same serialized label in
        # every process — snapshots written twice are byte-identical
        assert BNode(label).n3() == BNode(label).n3()
        parsed = parse_nquads_line(
            serialize_quad((BNode(label), URIRef("urn:p"),
                            Literal("o"), None))
        )
        assert parsed[0].n3() == BNode(label).n3()


class TestDocumentRoundTrip:
    @given(quads=st.lists(_exact_quads, max_size=12))
    @_settings
    def test_document_round_trips(self, quads):
        dataset = Dataset()
        for s, p, o, graph in quads:
            if graph is None:
                dataset.default.add((s, p, o))
            else:
                dataset.graph(graph).add((s, p, o))
        text = serialize_nquads(dataset)
        again = serialize_nquads(load_nquads(text))
        assert again == text


class TestRegressions:
    """The concrete literals from the issue, pinned without hypothesis."""

    @pytest.mark.parametrize("lexical", [
        "two\nlines",
        'a "quoted" word',
        "back\\slash",
        "\\n is not a newline",
        "crlf\r\n\ttab",
    ])
    def test_special_literals(self, lexical):
        quad = (URIRef("urn:s"), URIRef("urn:p"), Literal(lexical), None)
        assert parse_nquads_line(serialize_quad(quad)) == quad

    def test_unsafe_bnode_label_round_trips_stably(self):
        quad = (BNode("no spaces allowed"), URIRef("urn:p"),
                Literal("x"), URIRef("urn:g"))
        line = serialize_quad(quad)
        assert line.startswith("_:N")
        assert serialize_quad(parse_nquads_line(line)) == line
