"""N-Quads and dataset persistence tests."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    Dataset,
    FOAF,
    Literal,
    RDFS,
    URIRef,
    load_dataset,
    load_nquads,
    parse_nquads,
    save_dataset,
    serialize_nquads,
)
from repro.rdf.nquads import parse_nquads_line

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


def sample_dataset():
    ds = Dataset()
    ds.default.add((ex("a"), FOAF.name, Literal("Default A")))
    g1 = ds.graph("http://graphs/one")
    g1.add((ex("b"), FOAF.name, Literal("Named B", lang="en")))
    g1.add((ex("b"), FOAF.age, Literal(30)))
    g2 = ds.graph("http://graphs/two")
    g2.add((ex("c"), FOAF.knows, ex("b")))
    g2.add((ex("c"), RDFS.label, Literal('with "quotes" and <angles>')))
    return ds


class TestParseLine:
    def test_triple_without_graph(self):
        s, p, o, g = parse_nquads_line(
            '<http://x/s> <http://x/p> "lit" .'
        )
        assert g is None

    def test_quad_with_graph(self):
        s, p, o, g = parse_nquads_line(
            "<http://x/s> <http://x/p> <http://x/o> <http://graphs/g> ."
        )
        assert g == URIRef("http://graphs/g")
        assert o == URIRef("http://x/o")

    def test_iri_object_no_graph(self):
        s, p, o, g = parse_nquads_line(
            "<http://x/s> <http://x/p> <http://x/o> ."
        )
        assert g is None
        assert o == URIRef("http://x/o")

    def test_literal_object_with_graph(self):
        _, _, o, g = parse_nquads_line(
            '<http://x/s> <http://x/p> "v"@it <http://graphs/g> .'
        )
        assert o == Literal("v", lang="it")
        assert g == URIRef("http://graphs/g")

    def test_angle_text_inside_literal(self):
        _, _, o, g = parse_nquads_line(
            '<http://x/s> <http://x/p> "see <http://x>" .'
        )
        assert g is None
        assert o.lexical == "see <http://x>"

    def test_comments_skipped(self):
        quads = list(parse_nquads(
            "# header\n<http://x/s> <http://x/p> <http://x/o> .\n"
        ))
        assert len(quads) == 1


class TestRoundtrip:
    def test_serialize_deterministic(self):
        ds = sample_dataset()
        assert serialize_nquads(ds) == serialize_nquads(sample_dataset())

    def test_roundtrip_preserves_graph_assignment(self):
        ds = sample_dataset()
        restored = load_nquads(serialize_nquads(ds))
        assert set(restored.default.triples()) == set(
            ds.default.triples()
        )
        for identifier in ("http://graphs/one", "http://graphs/two"):
            assert set(
                restored.graph(identifier).triples()
            ) == set(ds.graph(identifier).triples())

    def test_save_load_file(self, tmp_path):
        path = tmp_path / "store.nq"
        save_dataset(sample_dataset(), path)
        restored = load_dataset(path)
        assert len(restored) == len(sample_dataset())

    def test_empty_dataset(self):
        assert serialize_nquads(Dataset()) == ""
        assert len(load_nquads("")) == 0

    def test_platform_store_persistence(self, tmp_path):
        """The local-deployment scenario: persist the full triple store
        (platform + LOD named graphs) and reload it queryable."""
        from repro.platform import Capture, Platform
        from repro.sparql import Evaluator, Point

        platform = Platform()
        platform.register_user("walter", "Walter Goix")
        platform.upload(Capture(
            username="walter", title="Mole", tags=(),
            timestamp=1000, point=Point(7.6930, 45.0690),
        ))
        store = platform.triple_store()
        path = tmp_path / "teamlife.nq"
        save_dataset(store, path)

        restored = load_dataset(path)
        assert len(restored) == len(store)
        result = Evaluator(restored).evaluate(
            "SELECT ?p WHERE { ?p a sioct:MicroblogPost }"
        )
        assert len(result) == 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from([ex(c) for c in "ab"]),
            st.sampled_from([FOAF.name, RDFS.label]),
            st.builds(Literal, st.text(max_size=15)),
            st.sampled_from(
                [None, URIRef("http://g/1"), URIRef("http://g/2")]
            ),
        ),
        max_size=25,
    )
)
def test_nquads_roundtrip_property(quads):
    ds = Dataset()
    for s, p, o, g in quads:
        if g is None:
            ds.default.add((s, p, o))
        else:
            ds.graph(g).add((s, p, o))
    restored = load_nquads(serialize_nquads(ds))
    assert serialize_nquads(restored) == serialize_nquads(ds)
