"""RDF/XML serialization and parsing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.rdf import (
    BNode,
    FOAF,
    Graph,
    Literal,
    RDF,
    RDFS,
    RdfXmlError,
    URIRef,
    load_rdfxml,
    parse_rdfxml,
    serialize_rdfxml,
)

EX = "http://example.org/"


def ex(name):
    return URIRef(EX + name)


def sample_graph():
    g = Graph()
    g.add((ex("alice"), RDF.type, FOAF.Person))
    g.add((ex("alice"), FOAF.name, Literal("Alice")))
    g.add((ex("alice"), FOAF.age, Literal(30)))
    g.add((ex("mole"), RDFS.label, Literal("Mole Antonelliana",
                                           lang="it")))
    g.add((ex("alice"), FOAF.knows, BNode("b1")))
    g.add((BNode("b1"), FOAF.name, Literal("Anonymous")))
    g.add((ex("weird"), RDFS.label, Literal('<tag> & "quote"')))
    return g


class TestSerializer:
    def test_structure(self):
        text = serialize_rdfxml(sample_graph())
        assert text.startswith('<?xml version="1.0"')
        assert "<rdf:RDF" in text
        assert 'rdf:about="http://example.org/alice"' in text
        assert 'rdf:resource=' in text

    def test_lang_attribute(self):
        text = serialize_rdfxml(sample_graph())
        assert 'xml:lang="it"' in text

    def test_datatype_attribute(self):
        text = serialize_rdfxml(sample_graph())
        assert 'rdf:datatype="http://www.w3.org/2001/XMLSchema#integer"' \
            in text

    def test_xml_escaping(self):
        text = serialize_rdfxml(sample_graph())
        assert "&lt;tag&gt; &amp; &quot;quote&quot;" in text

    def test_bnode_nodeid(self):
        text = serialize_rdfxml(sample_graph())
        assert 'rdf:nodeID="b1"' in text

    def test_empty_graph(self):
        text = serialize_rdfxml(Graph())
        assert "<rdf:RDF" in text
        load_rdfxml(text)  # parses cleanly

    def test_unqnameable_predicate_rejected(self):
        g = Graph()
        g.add((ex("s"), URIRef("http://example.org/123bad"), ex("o")))
        with pytest.raises(RdfXmlError):
            serialize_rdfxml(g)


class TestParser:
    def test_roundtrip(self):
        g = sample_graph()
        g2 = load_rdfxml(serialize_rdfxml(g))
        assert set(g2.triples()) == set(g.triples())

    def test_typed_node_shorthand(self):
        text = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf='
            '"http://www.w3.org/1999/02/22-rdf-syntax-ns#" '
            'xmlns:foaf="http://xmlns.com/foaf/0.1/">'
            '<foaf:Person rdf:about="http://example.org/bob">'
            "<foaf:name>Bob</foaf:name>"
            "</foaf:Person></rdf:RDF>"
        )
        g = load_rdfxml(text)
        assert (ex("bob"), RDF.type, FOAF.Person) in g
        assert (ex("bob"), FOAF.name, Literal("Bob")) in g

    def test_anonymous_description_gets_fresh_bnode(self):
        text = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf='
            '"http://www.w3.org/1999/02/22-rdf-syntax-ns#" '
            'xmlns:foaf="http://xmlns.com/foaf/0.1/">'
            "<rdf:Description><foaf:name>X</foaf:name>"
            "</rdf:Description></rdf:RDF>"
        )
        g = load_rdfxml(text)
        subjects = list(g.subjects())
        assert len(subjects) == 1
        assert isinstance(subjects[0], BNode)

    def test_invalid_xml(self):
        with pytest.raises(RdfXmlError):
            load_rdfxml("<not closed")

    def test_wrong_root(self):
        with pytest.raises(RdfXmlError):
            load_rdfxml("<foo/>")

    def test_empty_literal(self):
        text = (
            '<?xml version="1.0"?>'
            '<rdf:RDF xmlns:rdf='
            '"http://www.w3.org/1999/02/22-rdf-syntax-ns#" '
            'xmlns:foaf="http://xmlns.com/foaf/0.1/">'
            '<rdf:Description rdf:about="http://example.org/a">'
            "<foaf:name></foaf:name></rdf:Description></rdf:RDF>"
        )
        g = load_rdfxml(text)
        assert g.value(ex("a"), FOAF.name) == Literal("")


@given(
    st.lists(
        st.tuples(
            st.sampled_from([ex(c) for c in "abc"]),
            st.sampled_from([FOAF.name, FOAF.knows, RDFS.label]),
            st.one_of(
                st.sampled_from([ex(c) for c in "xyz"]),
                st.builds(
                    Literal,
                    st.text(
                        alphabet=st.characters(
                            blacklist_categories=("Cs", "Cc"),
                        ),
                        max_size=20,
                    ),
                ),
                st.builds(Literal, st.integers(-100, 100)),
            ),
        ),
        max_size=20,
    )
)
def test_rdfxml_roundtrip_property(triples):
    g = Graph()
    g.add_all(triples)
    g2 = load_rdfxml(serialize_rdfxml(g))
    assert set(g2.triples()) == set(g.triples())
