"""Workload generator and gold corpus tests."""

import pytest

from repro.core import build_default_annotator
from repro.platform import Platform
from repro.workloads import (
    GOLD_CORPUS,
    WorkloadConfig,
    generate_workload,
    populate_platform,
    score_pipeline,
)
from repro.workloads.gold import GoldExample, ScoredCorpus


class TestGenerator:
    def test_deterministic(self):
        a = generate_workload(WorkloadConfig(n_contents=30, seed=7))
        b = generate_workload(WorkloadConfig(n_contents=30, seed=7))
        assert [c.title for c in a.captures] == [
            c.title for c in b.captures
        ]
        assert a.friendships == b.friendships

    def test_seed_changes_output(self):
        a = generate_workload(WorkloadConfig(n_contents=30, seed=1))
        b = generate_workload(WorkloadConfig(n_contents=30, seed=2))
        assert [c.title for c in a.captures] != [
            c.title for c in b.captures
        ]

    def test_sizes(self):
        w = generate_workload(
            WorkloadConfig(n_users=8, n_contents=50, friend_degree=3)
        )
        assert len(w.usernames) == 8
        assert len(w.captures) == 50
        assert len(w.friendships) == 8 * 3 // 2

    def test_unknown_city_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(WorkloadConfig(cities=("Atlantis",)))

    def test_captures_have_geo(self):
        w = generate_workload(WorkloadConfig(n_contents=20))
        assert all(c.point is not None for c in w.captures)

    def test_timestamps_increasing(self):
        w = generate_workload(WorkloadConfig(n_contents=20))
        stamps = [c.timestamp for c in w.captures]
        assert stamps == sorted(stamps)

    def test_multi_city(self):
        w = generate_workload(
            WorkloadConfig(
                n_contents=60, cities=("Turin", "Rome"), seed=3
            )
        )
        titles = " ".join(c.title for c in w.captures)
        assert "Mole" in titles or "Torino" in titles or "Turin" in titles
        assert "Colosseo" in titles or "Rome" in titles or "Roma" in titles

    def test_populate_platform(self):
        platform = Platform()
        w = generate_workload(
            WorkloadConfig(n_users=5, n_contents=10, seed=11)
        )
        pids = populate_platform(platform, w)
        assert len(pids) == 10
        assert len(platform.users()) == 5
        rated = [
            platform.content(pids[i]).rating for i in w.ratings
        ]
        assert all(1.0 <= r <= 5.0 for r in rated)


class TestGoldCorpus:
    def test_corpus_nonempty_and_multilingual(self):
        languages = {e.language for e in GOLD_CORPUS if e.language}
        assert languages >= {"en", "it", "fr", "es", "de"}

    def test_has_abstention_cases(self):
        assert any(
            None in e.expected.values() for e in GOLD_CORPUS
        )

    def test_has_redirect_probe(self):
        assert any(
            "Coliseum" in e.expected for e in GOLD_CORPUS
        )

    def test_score_pipeline_headline(self):
        """The headline annotation quality: high precision AND recall
        over the gold corpus (the FIG1 experiment's summary row)."""
        score = score_pipeline(build_default_annotator())
        assert score.precision >= 0.9
        assert score.recall >= 0.9
        assert score.f1 >= 0.9
        assert score.language_accuracy >= 0.85

    def test_scoring_logic_false_negative(self):
        class AbstainEverything:
            def annotate(self, title, tags=()):
                from repro.core.annotator import AnnotationResult

                return AnnotationResult(
                    title=title, plain_tags=list(tags), language="en"
                )

        score = score_pipeline(
            AbstainEverything(),
            corpus=[GoldExample("x", expected={"x": object()})],
        )
        assert score.false_negatives == 1
        assert score.recall == 0.0

    def test_scoring_logic_perfect_abstention(self):
        class AbstainEverything:
            def annotate(self, title, tags=()):
                from repro.core.annotator import AnnotationResult

                return AnnotationResult(
                    title=title, plain_tags=list(tags), language="en"
                )

        score = score_pipeline(
            AbstainEverything(),
            corpus=[GoldExample("x", expected={"x": None})],
        )
        assert score.abstain_correct == 1
        assert score.precision == 1.0

    def test_empty_scorecard_metrics(self):
        empty = ScoredCorpus()
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.language_accuracy == 1.0
