"""Load generator: deterministic schedules, config validation, and a
small end-to-end run reporting out of the metrics registry."""

import pytest

from repro.obs import MetricsRegistry, set_registry
from repro.workloads import (
    MIXES,
    LoadConfig,
    LoadGenerator,
    build_schedule,
    render_schedule,
    schedule_digest,
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestConfig:
    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            LoadConfig(mix="nope")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            LoadConfig(mode="half-open")

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            LoadConfig(ops=0)
        with pytest.raises(ValueError):
            LoadConfig(workers=0)
        with pytest.raises(ValueError):
            LoadConfig(rate=0.0)
        with pytest.raises(ValueError):
            LoadConfig(sync_every=0)

    def test_all_mixes_constructible(self):
        for mix in MIXES:
            assert LoadConfig(mix=mix).mix == mix


class TestSchedule:
    def test_same_seed_same_schedule(self):
        a = build_schedule(LoadConfig(seed=7, ops=50))
        b = build_schedule(LoadConfig(seed=7, ops=50))
        assert render_schedule(a) == render_schedule(b)
        assert schedule_digest(a) == schedule_digest(b)

    def test_seed_changes_schedule(self):
        a = build_schedule(LoadConfig(seed=7, ops=50))
        b = build_schedule(LoadConfig(seed=8, ops=50))
        assert schedule_digest(a) != schedule_digest(b)

    def test_mix_changes_schedule(self):
        a = build_schedule(LoadConfig(mix="default", seed=7, ops=50))
        b = build_schedule(LoadConfig(mix="ingest", seed=7, ops=50))
        assert schedule_digest(a) != schedule_digest(b)

    def test_mix_weights_respected(self):
        # the ingest mix has zero mashup weight: none may be drawn
        schedule = build_schedule(
            LoadConfig(mix="ingest", seed=3, ops=200)
        )
        kinds = {op.kind for op in schedule}
        assert "mashup" not in kinds
        assert "upload" in kinds

    def test_arrivals_monotonic(self):
        schedule = build_schedule(LoadConfig(seed=1, ops=40))
        arrivals = [op.arrival_s for op in schedule]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_render_lines_up_with_ops(self):
        schedule = build_schedule(LoadConfig(seed=1, ops=12))
        lines = render_schedule(schedule).splitlines()
        assert len(lines) == 12
        assert lines[0].startswith("0000 ")


class TestRun:
    def test_small_run_reports_latencies(self, registry):
        config = LoadConfig(
            seed=7, ops=32, workers=3, base_contents=12, sync_every=2
        )
        report = LoadGenerator(config).run()
        assert report.completed == 32
        assert report.errors == 0, report.error_samples
        assert report.digest == schedule_digest(build_schedule(config))
        assert report.wall_seconds > 0
        assert report.throughput > 0
        # every op kind in the schedule shows up with a distribution
        kinds = {op.kind for op in build_schedule(config)}
        assert set(report.per_op) == kinds
        for row in report.per_op.values():
            assert row["count"] >= 1
            assert row["p95_ms"] >= row["p50_ms"] >= 0
            assert row["max_ms"] > 0
        # uploads happened and were verified queryable after sync
        if "upload" in kinds:
            assert report.freshness.get("count", 0) >= 1
        # the registry snapshot rides along for offline SLO evaluation
        assert "repro_loadgen_op_seconds" in report.metrics

    def test_report_serializes(self, registry):
        config = LoadConfig(seed=5, ops=8, workers=2, base_contents=8)
        report = LoadGenerator(config).run()
        data = report.to_dict()
        assert data["schedule_digest"] == report.digest
        assert data["completed"] == 8
        text = report.render()
        assert "load run:" in text and "op/s" in text
