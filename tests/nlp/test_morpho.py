"""Morphological analyzer, tokenizer and term-frequency tests."""

import pytest

from repro.nlp import (
    MorphologicalAnalyzer,
    POS_COMMON,
    POS_FUNCTION,
    POS_NUMBER,
    POS_PROPER,
    relevant_words,
    tokenize,
)


class TestTokenizer:
    def test_sentence_initial_flags(self):
        tokens = tokenize("Sunset over Turin. Great view!")
        flags = {t.text: t.sentence_initial for t in tokens}
        assert flags["Sunset"] is True
        assert flags["Turin"] is False
        assert flags["Great"] is True

    def test_offsets(self):
        tokens = tokenize("ab cd")
        assert (tokens[0].start, tokens[0].end) == (0, 2)
        assert (tokens[1].start, tokens[1].end) == (3, 5)

    def test_apostrophes_kept(self):
        tokens = tokenize("l'arco di San Francesco")
        assert tokens[0].text == "l'arco"

    def test_numeric_flag(self):
        tokens = tokenize("photo 42 of 2012")
        assert tokens[1].is_numeric
        assert not tokens[0].is_numeric

    def test_all_caps(self):
        tokens = tokenize("UNESCO site")
        assert tokens[0].is_all_caps
        assert not tokens[1].is_all_caps


class TestProperNounExtraction:
    def test_mid_sentence_capitalized_is_np(self):
        analyzer = MorphologicalAnalyzer("en")
        nps = analyzer.proper_nouns("a sunny day in Turin")
        assert [t.lemma for t in nps] == ["Turin"]
        assert nps[0].np_score >= 0.8

    def test_sentence_initial_common_word_below_threshold(self):
        analyzer = MorphologicalAnalyzer("en")
        tokens = analyzer.analyze("Sunset over Turin")
        sunset = next(t for t in tokens if t.form == "Sunset")
        assert sunset.np_score < 0.2
        nps = analyzer.proper_nouns("Sunset over Turin")
        assert [t.lemma for t in nps] == ["Turin"]

    def test_sentence_initial_unknown_word_above_threshold(self):
        analyzer = MorphologicalAnalyzer("en")
        nps = analyzer.proper_nouns("Antonelli built the tower")
        assert [t.lemma for t in nps] == ["Antonelli"]

    def test_gazetteer_multiword(self):
        analyzer = MorphologicalAnalyzer("it")
        nps = analyzer.proper_nouns("una foto della mole antonelliana")
        assert [t.lemma for t in nps] == ["Mole Antonelliana"]
        assert nps[0].is_multiword
        assert nps[0].np_score == pytest.approx(0.95)

    def test_gazetteer_longest_match(self):
        analyzer = MorphologicalAnalyzer("it")
        nps = analyzer.proper_nouns("visita alla piazza san carlo oggi")
        assert [t.lemma for t in nps] == ["Piazza San Carlo"]

    def test_capitalized_run_merges(self):
        analyzer = MorphologicalAnalyzer("en")
        nps = analyzer.proper_nouns("we visited Palazzo Carignano today")
        assert [t.lemma for t in nps] == ["Palazzo Carignano"]
        assert nps[0].is_multiword

    def test_numbers_excluded(self):
        analyzer = MorphologicalAnalyzer("en")
        tokens = analyzer.analyze("photo 42")
        assert tokens[-1].pos == POS_NUMBER
        assert analyzer.proper_nouns("photo 42") == []

    def test_stopwords_tagged_function(self):
        analyzer = MorphologicalAnalyzer("en")
        tokens = analyzer.analyze("the tower")
        assert tokens[0].pos == POS_FUNCTION

    def test_acronym(self):
        analyzer = MorphologicalAnalyzer("en")
        tokens = analyzer.analyze("a UNESCO site")
        unesco = next(t for t in tokens if t.form == "UNESCO")
        assert unesco.pos == POS_PROPER
        assert unesco.np_score == pytest.approx(0.7)

    def test_capitalized_stopword_sentence_initial_not_np(self):
        analyzer = MorphologicalAnalyzer("en")
        nps = analyzer.proper_nouns("The view from here")
        assert nps == []

    def test_min_score_parameter(self):
        analyzer = MorphologicalAnalyzer("en")
        # sentence-initial unknown scores 0.5: filtered at 0.6
        assert analyzer.proper_nouns("Antonelli built it",
                                     min_score=0.6) == []

    def test_italian_title_full_pipeline(self):
        analyzer = MorphologicalAnalyzer("it")
        nps = analyzer.proper_nouns(
            "Tramonto sulla Mole Antonelliana a Torino"
        )
        assert [t.lemma for t in nps] == ["Mole Antonelliana", "Torino"]


class TestLemmatization:
    def test_english_plural(self):
        analyzer = MorphologicalAnalyzer("en")
        assert analyzer.lemmatize("towers") == "tower"
        assert analyzer.lemmatize("cities") == "city"
        assert analyzer.lemmatize("churches") == "church"

    def test_english_exceptions(self):
        analyzer = MorphologicalAnalyzer("en")
        assert analyzer.lemmatize("people") == "person"
        assert analyzer.lemmatize("taken") == "take"

    def test_short_words_untouched(self):
        analyzer = MorphologicalAnalyzer("en")
        assert analyzer.lemmatize("bus") == "bus"

    def test_italian_plural(self):
        analyzer = MorphologicalAnalyzer("it")
        assert analyzer.lemmatize("musei") == "museo"
        assert analyzer.lemmatize("chiese") == "chiesa"

    def test_common_word_lemma_in_analysis(self):
        analyzer = MorphologicalAnalyzer("en")
        tokens = analyzer.analyze("nice pictures")
        assert tokens[-1].lemma == "picture"
        assert tokens[-1].pos == POS_COMMON


class TestTermFrequency:
    def test_ranks_by_frequency(self):
        words = relevant_words(
            "sunset sunset tower bridge sunset tower", "en", top_k=2
        )
        assert words == ["sunset", "tower"]

    def test_stopwords_excluded(self):
        words = relevant_words("the the the castle", "en")
        assert "the" not in words

    def test_exclude_set(self):
        words = relevant_words(
            "castle tower castle", "en", exclude={"castle"}
        )
        assert words == ["tower"]

    def test_min_length(self):
        assert relevant_words("go go go inn", "en", min_length=3) == ["inn"]

    def test_numbers_excluded(self):
        assert relevant_words("2012 2012 2012 fest", "en") == ["fest"]

    def test_empty(self):
        assert relevant_words("", "en") == []
