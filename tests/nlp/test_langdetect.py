"""Language identification tests."""

import pytest

from repro.nlp import (
    LanguageDetector,
    build_profile,
    default_detector,
    detect_language,
)


class TestProfiles:
    def test_profile_ordered_by_frequency(self):
        profile = build_profile("aaa bbb aaa")
        # 'a' appears most often among unigrams
        assert profile.index("a") < profile.index("b")

    def test_profile_size_capped(self):
        profile = build_profile("the quick brown fox " * 20, size=10)
        assert len(profile) == 10

    def test_empty_text(self):
        assert build_profile("") == []

    def test_profile_deterministic(self):
        text = "la vita è bella"
        assert build_profile(text) == build_profile(text)


class TestDetection:
    def test_english(self):
        assert detect_language(
            "A beautiful picture of the old tower taken during my trip"
        ) == "en"

    def test_italian(self):
        assert detect_language(
            "Una bellissima foto della torre scattata durante il viaggio"
        ) == "it"

    def test_french(self):
        assert detect_language(
            "Une belle photo de la vieille tour prise pendant mon voyage"
        ) == "fr"

    def test_spanish(self):
        assert detect_language(
            "Una foto hermosa de la torre antigua tomada durante el viaje"
        ) == "es"

    def test_german(self):
        assert detect_language(
            "Ein schönes Bild des alten Turms während meiner Reise"
        ) == "de"

    def test_paper_style_short_titles(self):
        assert detect_language("Tramonto sulla Mole Antonelliana") == "it"
        assert detect_language("Sunset over the city walls") == "en"

    def test_empty_text_default(self):
        assert detect_language("", default="it") == "it"
        assert detect_language("12345 !!!") == "en"

    def test_rank_returns_all_languages(self):
        detector = default_detector()
        ranking = detector.rank("the picture of the tower")
        assert len(ranking) == len(detector.languages)
        assert ranking[0].language == "en"
        assert all(
            ranking[i].confidence >= ranking[i + 1].confidence
            for i in range(len(ranking) - 1)
        )

    def test_confidence_in_unit_interval(self):
        detection = default_detector().detect_with_confidence(
            "una foto del mercato"
        )
        assert 0.0 <= detection.confidence <= 1.0

    def test_detect_with_confidence_empty(self):
        detection = default_detector().detect_with_confidence("")
        assert detection.confidence == 0.0


class TestCustomDetector:
    def test_custom_language_set(self):
        detector = LanguageDetector(
            samples={
                "xx": "zab zab zab zub zub",
                "yy": "kip kip kip kop kop",
            }
        )
        assert detector.detect("zab zub") == "xx"
        assert detector.detect("kip kop") == "yy"
        assert detector.languages == ("xx", "yy")
