"""String similarity tests (classic reference values included)."""

import pytest
from hypothesis import given, strategies as st

from repro.nlp import (
    best_match,
    jaro,
    jaro_winkler,
    jaro_winkler_ci,
    levenshtein,
    normalized_levenshtein,
)


class TestJaro:
    def test_identical(self):
        assert jaro("turin", "turin") == 1.0

    def test_empty(self):
        assert jaro("", "abc") == 0.0
        assert jaro("abc", "") == 0.0

    def test_no_overlap(self):
        assert jaro("abc", "xyz") == 0.0

    def test_classic_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_classic_dixon_dicksonx(self):
        assert jaro("dixon", "dicksonx") == pytest.approx(0.767, abs=1e-3)

    def test_symmetric(self):
        assert jaro("crate", "trace") == jaro("trace", "crate")


class TestJaroWinkler:
    def test_classic_martha_marhta(self):
        assert jaro_winkler("martha", "marhta") == pytest.approx(
            0.961, abs=1e-3
        )

    def test_classic_dwayne_duane(self):
        assert jaro_winkler("dwayne", "duane") == pytest.approx(
            0.84, abs=1e-2
        )

    def test_prefix_boost(self):
        assert jaro_winkler("prefixes", "prefixed") > jaro(
            "prefixes", "prefixed"
        )

    def test_prefix_capped_at_four(self):
        # identical 10-char prefix must not boost more than 4 chars worth
        a, b = "abcdefghijX", "abcdefghijY"
        expected = jaro(a, b) + 4 * 0.1 * (1 - jaro(a, b))
        assert jaro_winkler(a, b) == pytest.approx(expected)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            jaro_winkler("a", "b", prefix_scale=0.5)

    def test_paper_threshold_case(self):
        # "Coliseum" tag vs "Roman Colosseum" label: the famous near-miss
        assert jaro_winkler_ci("coliseum", "colosseum") >= 0.8
        assert jaro_winkler_ci("coliseum", "turin") < 0.8

    def test_case_insensitive_variant(self):
        assert jaro_winkler_ci("TURIN", "turin") == 1.0


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3

    def test_classic_kitten_sitting(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_single_substitution(self):
        assert levenshtein("turin", "turim") == 1

    def test_normalized_range(self):
        assert normalized_levenshtein("", "") == 1.0
        assert normalized_levenshtein("abc", "abc") == 1.0
        assert normalized_levenshtein("abc", "xyz") == 0.0


class TestBestMatch:
    def test_picks_highest(self):
        candidate, score = best_match(
            "coliseum", ["Turin", "Colosseum", "Paris"]
        )
        assert candidate == "Colosseum"
        assert score > 0.8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            best_match("x", [])

    def test_tie_keeps_first(self):
        candidate, _ = best_match("ab", ["ab", "ab"])
        assert candidate == "ab"


_words = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
    min_size=0, max_size=12,
)


@given(_words, _words)
def test_jaro_bounds_and_symmetry(a, b):
    score = jaro(a, b)
    assert 0.0 <= score <= 1.0
    assert score == pytest.approx(jaro(b, a))


@given(_words, _words)
def test_jaro_winkler_at_least_jaro(a, b):
    assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12


@given(_words)
def test_identity_is_one(word):
    assert jaro_winkler(word, word) == (1.0 if word else 0.0) or word == ""


@given(_words, _words, _words)
def test_levenshtein_triangle(a, b, c):
    assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


@given(_words, _words)
def test_levenshtein_symmetry_and_bounds(a, b):
    d = levenshtein(a, b)
    assert d == levenshtein(b, a)
    assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))
