"""Tracing core: nesting, thread hand-off, exporters, rendering."""

import io
import json
import threading

from repro.obs import (
    NOOP_SPAN,
    InMemorySpanExporter,
    JsonLinesExporter,
    Tracer,
    get_tracer,
    render_span_tree,
    set_tracer,
)


class TestSpanLifecycle:
    def test_nesting_links_parent_and_trace(self, obs_tracer,
                                            span_buffer):
        with obs_tracer.span("outer") as outer:
            with obs_tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == outer.span_id
        names = [s.name for s in span_buffer.spans()]
        assert names == ["inner", "outer"]  # finish order

    def test_exception_marks_error_status(self, obs_tracer):
        try:
            with obs_tracer.span("boom") as span:
                raise ValueError("nope")
        except ValueError:
            pass
        assert span.status == "error"
        assert "ValueError" in span.error

    def test_attributes_and_duration(self, obs_tracer):
        with obs_tracer.span("op", {"k": 1}) as span:
            span.set_attribute("extra", "v")
        assert span.attributes == {"k": 1, "extra": "v"}
        assert span.duration >= 0.0
        assert span.status == "ok"
        assert span.is_recording

    def test_to_dict_shape(self, obs_tracer):
        with obs_tracer.span("op", {"a": 1}) as span:
            pass
        record = span.to_dict()
        assert record["name"] == "op"
        assert record["duration_ms"] >= 0.0
        assert record["attributes"] == {"a": 1}
        assert record["status"] == "ok"

    def test_out_of_order_exit_tolerated(self, obs_tracer):
        outer = obs_tracer.span("outer")
        inner = obs_tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        outer.__exit__(None, None, None)  # wrong order on purpose
        inner.__exit__(None, None, None)
        assert obs_tracer.current_span() is None


class TestDisabledTracer:
    def test_disabled_tracer_hands_out_noop(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything")
        assert span is NOOP_SPAN
        assert not span.is_recording
        with span as entered:
            entered.set_attribute("ignored", 1)
            entered.set_status("error")
        assert tracer.current_span() is None

    def test_default_global_tracer_is_disabled(self):
        assert get_tracer().enabled is False

    def test_set_tracer_returns_previous(self):
        replacement = Tracer(enabled=False)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)


class TestThreadPropagation:
    def test_threads_have_independent_stacks(self, obs_tracer):
        seen = {}

        def work():
            seen["current"] = obs_tracer.current_span()
            with obs_tracer.span("child") as span:
                seen["child"] = span

        with obs_tracer.span("root") as root:
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        # no implicit cross-thread inheritance...
        assert seen["current"] is None
        assert seen["child"].parent_id is None

        assert root.span_id is not None

    def test_explicit_parent_crosses_threads(self, obs_tracer):
        spans = []

        def work(parent):
            with obs_tracer.span("child", parent=parent) as span:
                spans.append(span)

        with obs_tracer.span("root") as root:
            thread = threading.Thread(target=work, args=(root,))
            thread.start()
            thread.join()
        assert spans[0].parent_id == root.span_id
        assert spans[0].trace_id == root.trace_id

    def test_noop_parent_is_ignored(self, obs_tracer):
        with obs_tracer.span("solo", parent=NOOP_SPAN) as span:
            pass
        assert span.parent_id is None


class TestRecordSpan:
    def test_record_span_parents_to_current(self, obs_tracer):
        with obs_tracer.span("outer") as outer:
            recorded = obs_tracer.record_span("timed", 0.25)
        assert recorded.parent_id == outer.span_id
        assert recorded.duration == 0.25
        assert recorded.status == "ok"

    def test_record_span_explicit_parent(self, obs_tracer):
        with obs_tracer.span("a") as a:
            pass
        recorded = obs_tracer.record_span("timed", 0.1, parent=a)
        assert recorded.parent_id == a.span_id

    def test_record_span_disabled_returns_none(self):
        assert Tracer(enabled=False).record_span("x", 1.0) is None


class TestExporters:
    def test_ring_buffer_drops_oldest_and_counts(self):
        buffer = InMemorySpanExporter(capacity=2)
        tracer = Tracer(enabled=True, exporters=[buffer])
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in buffer.spans()] == ["s3", "s4"]
        assert buffer.dropped == 3
        buffer.clear()
        assert buffer.spans() == []
        assert buffer.dropped == 0

    def test_jsonl_exporter_writes_valid_lines(self):
        sink = io.StringIO()
        tracer = Tracer(
            enabled=True, exporters=[JsonLinesExporter(sink)]
        )
        with tracer.span("outer", {"k": "v"}):
            with tracer.span("inner"):
                pass
        lines = [
            json.loads(line)
            for line in sink.getvalue().splitlines()
        ]
        assert [r["name"] for r in lines] == ["inner", "outer"]
        assert lines[1]["attributes"] == {"k": "v"}
        assert lines[0]["parent_id"] == lines[1]["span_id"]

    def test_jsonl_exporter_to_path(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(str(target))
        tracer = Tracer(enabled=True, exporters=[exporter])
        with tracer.span("only"):
            pass
        exporter.close()
        record = json.loads(target.read_text().strip())
        assert record["name"] == "only"


class TestRenderTree:
    def test_tree_shape_and_orphans(self, obs_tracer, span_buffer):
        with obs_tracer.span("root"):
            with obs_tracer.span("a"):
                pass
            with obs_tracer.span("b"):
                pass
        rendered = render_span_tree(span_buffer.spans())
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].lstrip().startswith("├─ a")
        assert lines[2].lstrip().startswith("└─ b")
        assert "ms" in lines[0]

        # drop the root: children become orphaned roots
        orphans = [
            s for s in span_buffer.spans() if s.name != "root"
        ]
        rendered = render_span_tree(orphans)
        assert rendered.splitlines()[0].startswith("a")
