"""SLO spec parsing and snapshot evaluation."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.slo import (
    Objective,
    SLOError,
    SLOSpec,
    default_slo,
    evaluate_slo,
    quantile_from_series,
)


def _latency_objective(threshold=0.5, quantile=0.95, labels=None):
    return Objective(
        name="lat", kind="latency", metric="op_seconds",
        threshold=threshold, quantile=quantile, labels=labels or {},
    )


def _snapshot_with_latencies(values, labels=None):
    registry = MetricsRegistry()
    child = registry.histogram(
        "op_seconds", "op latency"
    ).labels(**(labels or {}))
    for value in values:
        child.observe(value)
    return registry.snapshot()


class TestSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SLOError):
            Objective(name="x", kind="nope", metric="m", threshold=1.0)

    def test_quantile_bounds_enforced(self):
        with pytest.raises(SLOError):
            Objective(
                name="x", kind="latency", metric="m",
                threshold=1.0, quantile=1.5,
            )

    def test_empty_spec_rejected(self):
        with pytest.raises(SLOError):
            SLOSpec(name="empty", objectives=())

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(SLOError):
            SLOSpec(
                name="dup",
                objectives=(_latency_objective(), _latency_objective()),
            )

    def test_round_trips_through_json(self, tmp_path):
        spec = default_slo()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        loaded = SLOSpec.load(path)
        assert loaded == spec

    def test_load_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SLOError):
            SLOSpec.load(path)
        with pytest.raises(SLOError):
            SLOSpec.load(tmp_path / "absent.json")


class TestQuantileFromSeries:
    def test_matches_live_histogram_quantile(self):
        registry = MetricsRegistry()
        child = registry.histogram("h", "x").labels()
        values = [0.0002, 0.003, 0.04, 0.5, 2.0]
        for value in values:
            child.observe(value)
        snapshot = registry.snapshot()
        series = snapshot["h"]["series"]
        for q in (0.5, 0.95, 1.0):
            estimate, samples = quantile_from_series(series, q)
            assert samples == len(values)
            assert estimate == pytest.approx(child.quantile(q))

    def test_q1_is_max_across_merged_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", "x")
        histogram.labels(op="a").observe(0.1)
        histogram.labels(op="b").observe(7.0)
        series = registry.snapshot()["h"]["series"]
        estimate, samples = quantile_from_series(series, 1.0)
        assert samples == 2
        assert estimate == 7.0

    def test_empty_series_returns_none(self):
        assert quantile_from_series([], 0.95) == (None, 0)


class TestEvaluate:
    def test_latency_pass_and_fail(self):
        snapshot = _snapshot_with_latencies([0.01] * 20)
        spec = SLOSpec("s", (_latency_objective(threshold=0.5),))
        report = evaluate_slo(spec, snapshot)
        assert report.passed
        (result,) = report.results
        assert result.ok and result.burn < 1.0 and result.samples == 20

        tight = SLOSpec("s", (_latency_objective(threshold=0.001),))
        report = evaluate_slo(tight, snapshot)
        assert not report.passed
        assert report.breaches[0].burn > 1.0

    def test_label_filter_selects_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("op_seconds", "x")
        histogram.labels(op="fast").observe(0.001)
        histogram.labels(op="slow").observe(9.0)
        snapshot = registry.snapshot()
        spec = SLOSpec("s", (
            _latency_objective(threshold=0.5, labels={"op": "fast"}),
        ))
        assert evaluate_slo(spec, snapshot).passed
        spec = SLOSpec("s", (
            _latency_objective(threshold=0.5, labels={"op": "slow"}),
        ))
        assert not evaluate_slo(spec, snapshot).passed

    def test_missing_data_fails_with_detail(self):
        spec = SLOSpec("s", (_latency_objective(),))
        report = evaluate_slo(spec, {})
        assert not report.passed
        assert "absent" in report.results[0].detail
        # present family, no matching labels
        snapshot = _snapshot_with_latencies([0.1], labels={"op": "a"})
        spec = SLOSpec("s", (
            _latency_objective(labels={"op": "other"}),
        ))
        report = evaluate_slo(spec, snapshot)
        assert not report.passed
        assert "no series" in report.results[0].detail

    def test_error_rate(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "x")
        counter.labels(op="a", status="ok").inc(98)
        counter.labels(op="a", status="error").inc(2)
        snapshot = registry.snapshot()
        objective = Objective(
            name="err", kind="error_rate", metric="ops_total",
            threshold=0.05,
        )
        report = evaluate_slo(SLOSpec("s", (objective,)), snapshot)
        (result,) = report.results
        assert result.ok
        assert result.observed == pytest.approx(0.02)
        tight = Objective(
            name="err", kind="error_rate", metric="ops_total",
            threshold=0.01,
        )
        assert not evaluate_slo(SLOSpec("s", (tight,)), snapshot).passed

    def test_throughput_needs_wall_seconds(self):
        snapshot = _snapshot_with_latencies([0.01] * 50)
        objective = Objective(
            name="tput", kind="throughput", metric="op_seconds",
            threshold=10.0,
        )
        spec = SLOSpec("s", (objective,))
        report = evaluate_slo(spec, snapshot, wall_seconds=2.0)
        (result,) = report.results
        assert result.ok and result.observed == pytest.approx(25.0)
        assert not evaluate_slo(spec, snapshot, wall_seconds=10.0).passed
        # unknown wall-clock cannot vacuously pass
        report = evaluate_slo(spec, snapshot, wall_seconds=None)
        assert not report.passed
        assert "wall-clock" in report.results[0].detail

    def test_report_serializes_and_renders(self):
        snapshot = _snapshot_with_latencies([0.01] * 10)
        spec = SLOSpec("s", (_latency_objective(threshold=0.001),))
        report = evaluate_slo(spec, snapshot, wall_seconds=1.0)
        data = json.loads(report.to_json())
        assert data["passed"] is False
        assert data["objectives"][0]["name"] == "lat"
        text = report.render()
        assert "FAIL" in text and "BREACH" in text

    def test_default_spec_is_wellformed(self):
        spec = default_slo()
        kinds = {objective.kind for objective in spec.objectives}
        assert kinds == {
            "latency", "freshness", "error_rate", "throughput"
        }
