"""Fixtures isolating the process-wide tracer/registry per test.

Every test in this package swaps in a fresh enabled :class:`Tracer`
(backed by an in-memory span buffer) and a fresh
:class:`MetricsRegistry`, restoring the previous globals afterwards so
the rest of the suite keeps running against the default disabled
tracer.
"""

import pytest

from repro.obs import (
    InMemorySpanExporter,
    MetricsRegistry,
    Tracer,
    set_registry,
    set_tracer,
)


@pytest.fixture
def span_buffer():
    return InMemorySpanExporter(capacity=4096)


@pytest.fixture
def obs_tracer(span_buffer):
    tracer = Tracer(enabled=True, exporters=[span_buffer])
    previous = set_tracer(tracer)
    yield tracer
    set_tracer(previous)


@pytest.fixture
def obs_registry():
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)
