"""Cross-component instrumentation contracts.

Pins the behaviors the observability PR promises: annotation stage
spans that sum to the pipeline total, cross-thread span propagation in
the batch annotator, EXPLAIN actual timings sourced from plan-node
spans, ResolverStats re-based on the metrics registry, and the
GraphStatistics rebuild counter.
"""

import pytest

from repro.core import BatchAnnotator, build_default_annotator
from repro.core.annotator import STAGE_HISTOGRAM
from repro.lod import build_lod_corpus
from repro.platform import Platform
from repro.rdf import (
    FOAF,
    Graph,
    Literal,
    RDF,
    SIOCT,
)
from repro.resolvers import (
    FlakyResolver,
    default_resolvers,
    wrap_resilient,
)
from repro.sparql import Evaluator
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)

pytestmark = pytest.mark.usefixtures("obs_registry")


def small_platform(n_contents=12):
    platform = Platform()
    workload = generate_workload(WorkloadConfig(
        n_users=4, n_contents=n_contents, cities=("Turin",), seed=11,
    ))
    populate_platform(platform, workload)
    return platform


QUERY = """
SELECT ?pic ?who WHERE {
  ?pic <http://www.w3.org/1999/02/22-rdf-syntax-ns#type>
       <http://rdfs.org/sioc/types#MicroblogPost> .
  ?pic <http://xmlns.com/foaf/0.1/maker> ?who .
}
"""


def tiny_graph():
    g = Graph()
    for i in range(5):
        pic = f"http://example.org/pic/{i}"
        g.add((pic, RDF.type, SIOCT.MicroblogPost))
        g.add((pic, FOAF.maker, "http://example.org/u/w"))
        g.add((pic, FOAF.name, Literal(f"pic {i}")))
    return g


# ----------------------------------------------------------------------
# Figure-1 pipeline stages
# ----------------------------------------------------------------------
class TestAnnotatorStages:
    def test_stage_spans_nest_and_sum_to_total(self, obs_tracer,
                                               span_buffer):
        annotator = build_default_annotator()
        annotator.annotate("Tramonto sulla Mole Antonelliana")
        spans = span_buffer.spans()
        root = next(s for s in spans if s.name == "annotate")
        stages = [
            s for s in spans
            if s.name.startswith("annotate.")
            and s.parent_id == root.span_id
        ]
        assert {s.name for s in stages} >= {
            "annotate.langdetect", "annotate.morpho",
            "annotate.broker", "annotate.filter",
        }
        # per-stage durations account for (almost all of) the total
        stage_sum = sum(s.duration for s in stages)
        assert stage_sum <= root.duration
        assert stage_sum >= 0.5 * root.duration

    def test_stage_histogram_populated(self, obs_tracer,
                                       obs_registry):
        annotator = build_default_annotator()
        annotator.annotate("Mole Antonelliana")
        family = obs_registry.get(STAGE_HISTOGRAM)
        stages = {
            labels["stage"] for labels, _ in family.children()
        }
        assert "broker" in stages
        assert "langdetect" in stages


# ----------------------------------------------------------------------
# Batch annotator: cross-thread propagation (satellite 4)
# ----------------------------------------------------------------------
class TestBatchSpanPropagation:
    def run_batch(self, tracer_buffer, workers):
        platform = small_platform()
        batch = BatchAnnotator(
            platform, Graph(), batch_size=50, workers=workers
        )
        stats = batch.run()
        assert stats.failed == 0
        spans = tracer_buffer.spans()
        tracer_buffer.clear()
        return spans

    def test_parallel_items_parent_to_batch_root(self, obs_tracer,
                                                 span_buffer):
        spans = self.run_batch(span_buffer, workers=4)
        roots = [s for s in spans if s.name == "batch.run"]
        assert len(roots) == 1
        root = roots[0]
        items = [s for s in spans if s.name == "batch.item"]
        assert items, "no batch.item spans recorded"
        assert all(
            s.parent_id == root.span_id for s in items
        )
        assert all(s.trace_id == root.trace_id for s in items)

    def test_parallel_and_sequential_traces_match(self, obs_tracer,
                                                  span_buffer):
        sequential = self.run_batch(span_buffer, workers=1)
        parallel = self.run_batch(span_buffer, workers=4)

        def names(spans):
            counts = {}
            for span in spans:
                counts[span.name] = counts.get(span.name, 0) + 1
            return counts

        # resolver cache state differs between runs (the second run
        # hits warm caches), so compare the stable structural spans
        def structural(spans):
            return {
                name: count for name, count in names(spans).items()
                if not name.startswith("resolver.")
            }

        assert structural(sequential) == structural(parallel)

    def test_item_error_marks_span(self, obs_tracer, span_buffer):
        platform = small_platform(n_contents=3)

        class Boom:
            broker = None

            def annotate(self, title, tags):
                raise RuntimeError("nope")

        platform.annotator = Boom()
        batch = BatchAnnotator(platform, Graph(), workers=2)
        stats = batch.run()
        assert stats.failed == 3
        items = [
            s for s in span_buffer.spans() if s.name == "batch.item"
        ]
        assert items
        assert all(s.status == "error" for s in items)


# ----------------------------------------------------------------------
# EXPLAIN actual timings (satellite 2)
# ----------------------------------------------------------------------
class TestExplainTimings:
    def test_explain_reports_per_node_wall_time(self):
        graph = tiny_graph()
        evaluator = Evaluator(graph)
        explanation = evaluator.explain(QUERY, execute=True)
        rendered = explanation.render()
        assert "== plan for" in rendered
        assert "rows: 5" in rendered
        # the root plan nodes carry actual cardinality AND wall time
        plan_lines = [
            line for line in rendered.splitlines()
            if "est=" in line
        ]
        assert plan_lines
        timed = [li for li in plan_lines if "ms=" in li]
        assert timed, "no plan node carries an actual ms"
        for line in timed:
            assert "actual=" in line

    def test_plan_node_timing_off_outside_explain(self):
        graph = tiny_graph()
        evaluator = Evaluator(graph)
        evaluator.evaluate(QUERY)  # default tracer disabled: no timing
        assert evaluator._time_plan_nodes is False
        explanation = evaluator.explain(QUERY, execute=False)
        assert "ms=" not in explanation.render()

    def test_evaluate_emits_plan_spans_when_tracing(self, obs_tracer,
                                                    span_buffer):
        graph = tiny_graph()
        evaluator = Evaluator(graph)
        evaluator.evaluate(QUERY)
        spans = span_buffer.spans()
        root = next(
            s for s in spans if s.name == "sparql.evaluate"
        )
        assert root.attributes.get("form") == "SELECT"
        plan_spans = [
            s for s in spans if s.name.startswith("plan.")
        ]
        assert plan_spans
        assert all(
            s.trace_id == root.trace_id for s in plan_spans
        )


# ----------------------------------------------------------------------
# Resolver stats re-based on the registry
# ----------------------------------------------------------------------
class TestResolverStatsRebase:
    def test_fresh_wrapper_reads_zero(self):
        corpus = build_lod_corpus()
        first = wrap_resilient(default_resolvers(corpus))[0]
        first.resolve_term("mole", "it")
        assert first.stats().calls >= 1
        # a second wrapper over the same registry starts from zero
        second = wrap_resilient(default_resolvers(corpus))[0]
        assert second.stats().calls == 0

    def test_stats_count_calls_and_failures(self):
        corpus = build_lod_corpus()
        flaky = [
            FlakyResolver(r, failure_rate=1.0, seed=5)
            for r in default_resolvers(corpus)[:1]
        ]
        wrapped = wrap_resilient(flaky, reset_timeout=3600.0)[0]
        with pytest.raises(Exception):
            wrapped.resolve_term("mole", "it")
        stats = wrapped.stats()
        assert stats.calls >= 1
        assert stats.failures >= 1
        assert stats.last_error is not None


# ----------------------------------------------------------------------
# GraphStatistics rebuild accounting (satellite 3)
# ----------------------------------------------------------------------
class TestGraphStatsRebuilds:
    def rebuilds(self, registry):
        family = registry.get("repro_graph_stats_rebuilds_total")
        return family.value if family is not None else 0

    def test_cached_snapshot_not_recollected(self, obs_registry):
        graph = tiny_graph()
        evaluator = Evaluator(graph)
        evaluator.evaluate(QUERY)
        evaluator.evaluate(QUERY)
        assert self.rebuilds(obs_registry) == 1
        # a second evaluator over the same graph reuses the snapshot
        Evaluator(graph).evaluate(QUERY)
        assert self.rebuilds(obs_registry) == 1

    def test_mutation_forces_recollection(self, obs_registry):
        graph = tiny_graph()
        evaluator = Evaluator(graph)
        evaluator.evaluate(QUERY)
        assert self.rebuilds(obs_registry) == 1
        graph.add((
            "http://example.org/pic/99", RDF.type,
            SIOCT.MicroblogPost,
        ))
        evaluator.evaluate(QUERY)
        assert self.rebuilds(obs_registry) == 2
        gauge = obs_registry.get("repro_graph_stats_age_seconds")
        assert gauge is not None
        assert gauge.value >= 0.0
