"""Metrics registry: families, labels, expositions."""

import json

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("c_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_inc_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("c_total").inc(-1)

    def test_labeled_children_are_independent(self, registry):
        counter = registry.counter("c_total")
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc(3)
        assert counter.labels(kind="a").value == 1
        assert counter.labels(kind="b").value == 3


class TestGauge:
    def test_set_inc_dec_max(self, registry):
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4
        gauge.set_max(10)
        gauge.set_max(3)
        assert gauge.value == 10


class TestHistogram:
    def test_observe_updates_summary(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(1, 2, 4))
        for value in (0.5, 1.5, 3.0, 8.0):
            histogram.observe(value)
        child = histogram.labels()
        assert child.count == 4
        assert child.sum == 13.0
        assert child.max == 8.0
        assert child.mean == 3.25
        assert child.bucket_counts() == [1, 1, 1, 1]

    def test_default_buckets_are_log_scale(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 16
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )

    def test_quantile_interpolates(self, registry):
        histogram = registry.histogram("h", buckets=(1, 2, 4))
        for _ in range(100):
            histogram.observe(1.5)
        child = histogram.labels()
        assert 1.0 <= child.quantile(0.5) <= 2.0
        assert child.quantile(0.0) <= child.quantile(1.0)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("bad", buckets=(2, 1))

    def test_quantile_one_returns_tracked_max(self, registry):
        histogram = registry.histogram("h", buckets=(1, 2, 4))
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        child = histogram.labels()
        # q=1.0 is the exact tracked maximum, not the 4.0 bucket edge.
        assert child.quantile(1.0) == 3.0
        histogram.observe(9.0)  # lands in the +Inf bucket
        assert child.quantile(1.0) == 9.0

    def test_quantile_estimates_never_exceed_max(self, registry):
        histogram = registry.histogram("h", buckets=(1, 2, 4))
        for _ in range(10):
            histogram.observe(1.2)
        child = histogram.labels()
        for q in (0.5, 0.9, 0.95, 0.99, 1.0):
            assert child.quantile(q) <= child.max

    def test_quantile_empty_histogram_is_zero(self, registry):
        child = registry.histogram("h").labels()
        assert child.quantile(0.5) == 0.0
        assert child.quantile(1.0) == 0.0

    def test_quantile_bounds_enforced(self, registry):
        child = registry.histogram("h").labels()
        with pytest.raises(MetricError):
            child.quantile(-0.01)
        with pytest.raises(MetricError):
            child.quantile(1.01)


class TestRegistry:
    def test_idempotent_registration(self, registry):
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total", "other help")
        assert first is again

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(MetricError):
            registry.gauge("x")

    def test_histogram_bucket_conflict_raises(self, registry):
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.counter("1starts-with-digit")
        with pytest.raises(MetricError):
            registry.counter("ok").labels(**{"bad-label": "v"})

    def test_get_and_families_sorted(self, registry):
        registry.counter("b")
        registry.gauge("a")
        assert [f.name for f in registry.families()] == ["a", "b"]
        assert registry.get("a").kind == "gauge"
        assert registry.get("missing") is None
        registry.clear()
        assert registry.families() == []


class TestExpositions:
    def test_snapshot_is_json_able(self, registry):
        registry.counter("c_total", "help").labels(k="v").inc(2)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        snapshot = json.loads(registry.snapshot_json())
        assert snapshot["c_total"]["type"] == "counter"
        assert snapshot["c_total"]["series"][0]["value"] == 2
        assert snapshot["h"]["series"][0]["count"] == 1

    def test_prometheus_no_duplicate_help_type(self, registry):
        counter = registry.counter("c_total", "Counts things.")
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc()
        registry.histogram("h_seconds", "Latency.").observe(0.01)
        text = registry.prometheus()
        lines = text.splitlines()
        help_lines = [li for li in lines if li.startswith("# HELP")]
        type_lines = [li for li in lines if li.startswith("# TYPE")]
        assert len(help_lines) == len(set(help_lines)) == 2
        assert len(type_lines) == len(set(type_lines)) == 2
        assert '# TYPE h_seconds histogram' in type_lines

    def test_prometheus_histogram_series_cumulative(self, registry):
        registry.histogram("h", "x", buckets=(1, 2)).observe(1.5)
        text = registry.prometheus()
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_prometheus_escapes_label_values(self, registry):
        registry.counter("c").labels(k='va"l\\ue').inc()
        text = registry.prometheus()
        assert r'c{k="va\"l\\ue"} 1' in text
