"""Sampling profiler: lifecycle, aggregation, output formats."""

import threading
import time

import pytest

from repro.obs.profiler import (
    ProfilerError,
    SamplingProfiler,
    profile_from_env,
)


def _spin(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


def busy_wrapper(stop: threading.Event) -> None:
    _spin(stop)


class TestLifecycle:
    def test_rejects_bad_rates(self):
        with pytest.raises(ProfilerError):
            SamplingProfiler(hz=0)
        with pytest.raises(ProfilerError):
            SamplingProfiler(hz=5000)

    def test_double_start_and_stop_misuse_raise(self):
        profiler = SamplingProfiler(hz=100)
        profiler.start()
        try:
            with pytest.raises(ProfilerError):
                profiler.start()
        finally:
            profiler.stop()
        with pytest.raises(ProfilerError):
            profiler.stop()

    def test_context_manager_collects_samples(self):
        with SamplingProfiler(hz=250) as profiler:
            deadline = time.perf_counter() + 0.2
            while time.perf_counter() < deadline:
                sum(range(1000))
        stats = profiler.stats()
        assert stats.samples > 5
        assert stats.wall_seconds > 0
        assert profiler.collapsed()


class TestAggregation:
    def test_collapsed_stacks_name_thread_and_frames(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_wrapper, args=(stop,), name="busy-thread"
        )
        worker.start()
        try:
            profiler = SamplingProfiler(hz=250)
            profiler.start()
            time.sleep(0.25)
            stats = profiler.stop()
        finally:
            stop.set()
            worker.join()
        collapsed = profiler.collapsed()
        busy_lines = [
            line for line in collapsed.splitlines()
            if line.startswith("busy-thread;")
        ]
        assert busy_lines, collapsed
        # root-to-leaf order: the wrapper appears before the spin loop
        spin_line = next(
            (line for line in busy_lines if "test_profiler._spin" in line),
            None,
        )
        assert spin_line is not None, busy_lines
        assert spin_line.index("busy_wrapper") < spin_line.index("._spin")
        # flamegraph format: semicolon-joined frames, space, count
        stack, count = spin_line.rsplit(" ", 1)
        assert int(count) >= 1
        assert stats.threads_seen >= 2  # worker + this thread

    def test_top_ranks_hot_leaves(self):
        stop = threading.Event()
        worker = threading.Thread(
            target=busy_wrapper, args=(stop,), name="hot"
        )
        worker.start()
        try:
            with SamplingProfiler(hz=250) as profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            worker.join()
        leaves = dict(profiler.top(50))
        assert any("_spin" in leaf for leaf in leaves)

    def test_sampler_never_samples_itself(self):
        with SamplingProfiler(hz=250) as profiler:
            time.sleep(0.1)
        assert "repro-profiler" not in profiler.collapsed()

    def test_write_collapsed(self, tmp_path):
        with SamplingProfiler(hz=250) as profiler:
            deadline = time.perf_counter() + 0.1
            while time.perf_counter() < deadline:
                sum(range(1000))
        target = tmp_path / "out" / "profile.txt"
        written = profiler.write_collapsed(target)
        assert written == target
        text = target.read_text(encoding="utf-8")
        assert text.strip()
        for line in text.strip().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and ";" in stack


class TestEnvAttachment:
    def test_disabled_by_default(self):
        assert profile_from_env({}) == (None, None)
        assert profile_from_env({"REPRO_PROFILE": "0"}) == (None, None)

    def test_enabled_without_output(self):
        profiler, output = profile_from_env({"REPRO_PROFILE": "1"})
        assert profiler is not None and output is None

    def test_output_path_and_hz(self):
        profiler, output = profile_from_env({
            "REPRO_PROFILE": "/tmp/x.collapsed",
            "REPRO_PROFILE_HZ": "123",
        })
        assert str(output) == "/tmp/x.collapsed"
        assert profiler.hz == 123.0

    def test_bad_hz_raises(self):
        with pytest.raises(ProfilerError):
            profile_from_env({
                "REPRO_PROFILE": "1", "REPRO_PROFILE_HZ": "fast",
            })
