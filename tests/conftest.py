"""Shared fixtures: the opt-in runtime lock sanitizer.

Two ways to run tests under :class:`repro.analysis.LockSanitizer`:

* request the ``lock_sanitizer`` fixture explicitly (the stress tests
  do) — the test gets the sanitizer object and the fixture fails the
  test on any lock-order inversion at teardown;
* set ``REPRO_SANITIZE=1`` in the environment to wrap *every* test the
  same way (CI's fault-injection step runs the thread-heavy suites in
  this mode).
"""

import os

import pytest

from repro.analysis.sanitizer import LockSanitizer

_SANITIZE_ALL = os.environ.get("REPRO_SANITIZE") == "1"


def _run_sanitized():
    sanitizer = LockSanitizer()
    with sanitizer.installed():
        yield sanitizer
    report = sanitizer.report()
    if report.inversions:
        pytest.fail(
            "lock-order inversion(s) under the sanitizer:\n"
            + report.render()
        )


@pytest.fixture
def lock_sanitizer():
    """Run this test under the lock sanitizer; fail on inversions."""
    yield from _run_sanitized()


@pytest.fixture(autouse=_SANITIZE_ALL)
def _sanitize_everything():
    """With REPRO_SANITIZE=1, every test runs under the sanitizer."""
    yield from _run_sanitized()
