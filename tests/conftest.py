"""Shared fixtures: the opt-in runtime sanitizers.

Two ways to run tests under the runtime sanitizers
(:class:`repro.analysis.LockSanitizer` and
:class:`repro.analysis.StoreSanitizer`):

* request the ``lock_sanitizer`` / ``store_sanitizer`` fixture
  explicitly (the stress tests do) — the test gets the sanitizer
  object and the fixture fails the test on any violation at teardown;
* set ``REPRO_SANITIZE=1`` in the environment to wrap *every* test in
  both sanitizers (CI's fault-injection step runs the thread-heavy
  suites in this mode).
"""

import os

import pytest

from repro.analysis.sanitizer import LockSanitizer
from repro.analysis.store_sanitizer import StoreSanitizer

_SANITIZE_ALL = os.environ.get("REPRO_SANITIZE") == "1"


def _run_lock_sanitized():
    sanitizer = LockSanitizer()
    with sanitizer.installed():
        yield sanitizer
    report = sanitizer.report()
    if report.inversions:
        pytest.fail(
            "lock-order inversion(s) under the sanitizer:\n"
            + report.render()
        )


def _run_store_sanitized():
    sanitizer = StoreSanitizer()
    with sanitizer.installed():
        yield sanitizer
    report = sanitizer.report()
    if report.violations:
        pytest.fail(
            "store-access violation(s) under the sanitizer:\n"
            + report.render()
        )


@pytest.fixture
def lock_sanitizer():
    """Run this test under the lock sanitizer; fail on inversions."""
    yield from _run_lock_sanitized()


@pytest.fixture
def store_sanitizer():
    """Run this test under the store sanitizer; fail on mutation-
    during-iteration or ``Graph-writes`` contract violations."""
    yield from _run_store_sanitized()


@pytest.fixture(autouse=_SANITIZE_ALL)
def _sanitize_everything():
    """With REPRO_SANITIZE=1, every test runs under both sanitizers."""
    lock = LockSanitizer()
    store = StoreSanitizer()
    with lock.installed(), store.installed():
        yield
    failures = []
    lock_report = lock.report()
    if lock_report.inversions:
        failures.append(
            "lock-order inversion(s) under the sanitizer:\n"
            + lock_report.render()
        )
    store_report = store.report()
    if store_report.violations:
        failures.append(
            "store-access violation(s) under the sanitizer:\n"
            + store_report.render()
        )
    if failures:
        pytest.fail("\n\n".join(failures))
