"""Semantic filtering rule tests (paper §2.2.2)."""

import pytest

from repro.core.filtering import (
    DEFAULT_PRIORITY,
    Reason,
    SemanticFilter,
)
from repro.lod import build_lod_corpus
from repro.lod.geonames import geonames_uri
from repro.rdf import DBPR, EVRIR, URIRef
from repro.resolvers import Candidate


@pytest.fixture(scope="module")
def corpus():
    return build_lod_corpus()


@pytest.fixture(scope="module")
def semantic_filter(corpus):
    return SemanticFilter(corpus)


def make(resource, label, score=0.9, resolver="sindice", word="x"):
    return Candidate(
        resource=resource, label=label, score=score,
        resolver=resolver, word=word,
    )


class TestPriorities:
    def test_geonames_beats_dbpedia(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Turin",
            [
                make(DBPR.Turin, "Turin", 1.0, "dbpedia"),
                make(geonames_uri(3165524), "Turin", 0.9, "geonames"),
            ],
        )
        assert outcome.annotated
        assert outcome.chosen.resource == geonames_uri(3165524)

    def test_dbpedia_beats_evri(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Colosseum",
            [
                make(EVRIR.Colosseum, "Colosseum", 0.95, "evri"),
                make(DBPR.Colosseum, "Colosseum", 0.8, "dbpedia"),
            ],
        )
        assert outcome.annotated
        assert outcome.chosen.resource == DBPR.Colosseum

    def test_other_graphs_discarded(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Turin",
            [make(URIRef("http://linkedgeodata.org/triplify/node1"),
                  "Turin")],
        )
        assert outcome.reason is Reason.ALL_DISCARDED
        assert "not in priority" in outcome.discarded[0][1]

    def test_priority_order_is_papers(self):
        assert DEFAULT_PRIORITY == ("geonames", "dbpedia", "evri")

    def test_custom_priority_order(self, corpus):
        flipped = SemanticFilter(
            corpus, priority=("dbpedia", "geonames", "evri")
        )
        outcome = flipped.filter_word(
            "Turin",
            [
                make(DBPR.Turin, "Turin", 1.0, "dbpedia"),
                make(geonames_uri(3165524), "Turin", 0.9, "geonames"),
            ],
        )
        assert outcome.chosen.resource == DBPR.Turin

    def test_priority_disabled_makes_cross_graph_ambiguous(self, corpus):
        no_priority = SemanticFilter(corpus, use_priority=False)
        outcome = no_priority.filter_word(
            "Turin",
            [
                make(DBPR.Turin, "Turin", 1.0, "dbpedia"),
                make(geonames_uri(3165524), "Turin", 0.9, "geonames"),
            ],
        )
        assert outcome.reason is Reason.AMBIGUOUS


class TestValidation:
    def test_unbound_resource_discarded(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Ghost",
            [make(DBPR.No_Such_Resource, "Ghost")],
        )
        assert outcome.reason is Reason.ALL_DISCARDED
        assert "no binding" in outcome.discarded[0][1]

    def test_disambiguation_page_discarded_for_non_dbpedia_resolver(
        self, semantic_filter
    ):
        outcome = semantic_filter.filter_word(
            "Paris",
            [make(DBPR["Paris_(disambiguation)"], "Paris",
                  resolver="sindice")],
        )
        assert outcome.reason is Reason.ALL_DISCARDED
        assert "disambiguation" in outcome.discarded[0][1]

    def test_disambiguation_check_skipped_for_dbpedia_resolver(
        self, semantic_filter
    ):
        # the DBpedia resolver already performs this check at the source,
        # so the filter trusts it (per the paper) — the page survives
        outcome = semantic_filter.filter_word(
            "Paris",
            [make(DBPR["Paris_(disambiguation)"], "Paris",
                  resolver="dbpedia")],
        )
        assert outcome.annotated

    def test_validation_disabled(self, corpus):
        lax = SemanticFilter(corpus, validate=False)
        outcome = lax.filter_word(
            "Ghost", [make(DBPR.No_Such_Resource, "Ghost")]
        )
        assert outcome.annotated


class TestJaroWinkler:
    def test_close_label_survives(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Coliseum",
            [make(DBPR.Colosseum, "Colosseum", 0.9, "sindice")],
        )
        assert outcome.annotated

    def test_distant_label_discarded(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "sunset",
            [make(DBPR.Turin, "Turin", 0.9, "sindice")],
        )
        assert outcome.reason is Reason.ALL_DISCARDED
        assert "jaro-winkler" in outcome.discarded[0][1]

    def test_max_dbpedia_score_escape_hatch(self, semantic_filter):
        # label far from the word, but the DBpedia score is maximum
        outcome = semantic_filter.filter_word(
            "sunset",
            [make(DBPR.Turin, "Turin", 1.0, "dbpedia")],
        )
        assert outcome.annotated

    def test_escape_hatch_not_for_other_resolvers(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "sunset",
            [make(geonames_uri(3165524), "Turin", 1.0, "geonames")],
        )
        assert outcome.reason is Reason.ALL_DISCARDED

    def test_escape_hatch_disablable(self, corpus):
        strict = SemanticFilter(
            corpus, jw_escape_on_max_dbpedia_score=False
        )
        outcome = strict.filter_word(
            "sunset", [make(DBPR.Turin, "Turin", 1.0, "dbpedia")]
        )
        assert outcome.reason is Reason.ALL_DISCARDED

    def test_threshold_sweep_monotone(self, corpus):
        # raising the threshold can only discard more
        candidates = [make(DBPR.Colosseum, "Colosseum", 0.9, "sindice",
                           "Coliseum")]
        survivors = []
        for threshold in (0.5, 0.8, 0.97):
            f = SemanticFilter(corpus, jw_threshold=threshold)
            outcome = f.filter_word("Coliseum", candidates)
            survivors.append(len(outcome.survivors))
        assert survivors[0] >= survivors[1] >= survivors[2]


class TestSingleCandidateRule:
    def test_two_survivors_same_graph_ambiguous(self, semantic_filter):
        outcome = semantic_filter.filter_word(
            "Paris",
            [
                make(DBPR.Paris, "Paris", 0.9, "dbpedia"),
                make(DBPR["Paris_(mythology)"], "Paris (mythology)",
                     0.7, "dbpedia"),
            ],
        )
        assert outcome.reason is Reason.AMBIGUOUS
        assert outcome.chosen is None
        assert len(outcome.survivors) == 2

    def test_higher_priority_graph_resolves_ambiguity(
        self, semantic_filter
    ):
        outcome = semantic_filter.filter_word(
            "Paris",
            [
                make(DBPR.Paris, "Paris", 0.9, "dbpedia"),
                make(DBPR["Paris_(mythology)"], "Paris (mythology)",
                     0.7, "dbpedia"),
                make(geonames_uri(2988507), "Paris", 0.95, "geonames"),
            ],
        )
        assert outcome.annotated
        assert outcome.chosen.resource == geonames_uri(2988507)

    def test_no_candidates(self, semantic_filter):
        outcome = semantic_filter.filter_word("x", [])
        assert outcome.reason is Reason.NO_CANDIDATES
