"""AlbumBuilder tests: composing the paper's 'complex search conditions'."""

import pytest

from repro.core import AlbumBuilder, AlbumBuilderError, geo_album
from repro.platform import Capture, Platform
from repro.rdf import DBPR
from repro.sparql import Point

NEAR_MOLE = Point(7.6930, 45.0690)
NEAR_MOLE_2 = Point(7.6938, 45.0695)
FAR_AWAY = Point(7.6500, 45.0300)


@pytest.fixture(scope="module")
def platform():
    p = Platform()
    p.register_user("oscar", "Oscar Rodriguez")
    p.register_user("walter", "Walter Goix")
    p.register_user("carmen", "Carmen Criminisi")
    p.add_friendship("oscar", "walter")
    p.upload(Capture("walter", "Tramonto sulla Mole Antonelliana",
                     ("mole",), 1000, NEAR_MOLE))
    p.upload(Capture("carmen", "Mole Antonelliana by night",
                     ("night",), 2000, NEAR_MOLE_2))
    p.upload(Capture("walter", "periferia di Torino", (), 3000,
                     FAR_AWAY))
    p.upload(Capture("walter", "another Mole picture", ("mole",),
                     4000, NEAR_MOLE))
    p.rate(1, 5.0)
    p.rate(2, 3.0)
    p.rate(4, 2.0)
    p.semanticize()
    return p


def links(platform, album):
    return set(album.links(platform.evaluator()))


def url(platform, pid):
    return platform.content(pid).media_url


class TestGeoCriteria:
    def test_near_label_equivalent_to_paper_q1(self, platform):
        built = (AlbumBuilder().near_label("Mole Antonelliana",
                                           radius_km=0.3).build())
        paper = geo_album("Mole Antonelliana", radius_km=0.3)
        assert links(platform, built) == links(platform, paper)

    def test_near_point(self, platform):
        album = AlbumBuilder().near_point(NEAR_MOLE, 0.2).build()
        assert links(platform, album) == {
            url(platform, 1), url(platform, 2), url(platform, 4),
        }


class TestSocialCriteria:
    def test_by_user(self, platform):
        album = AlbumBuilder().by_user("carmen").build()
        assert links(platform, album) == {url(platform, 2)}

    def test_by_friend_of(self, platform):
        album = (AlbumBuilder()
                 .near_label("Mole Antonelliana", radius_km=0.3)
                 .by_friend_of("oscar").build())
        assert links(platform, album) == {
            url(platform, 1), url(platform, 4),
        }


class TestRatingAndTime:
    def test_min_rating(self, platform):
        album = (AlbumBuilder()
                 .near_label("Mole Antonelliana", radius_km=0.3)
                 .min_rating(3).build())
        assert links(platform, album) == {
            url(platform, 1), url(platform, 2),
        }

    def test_order_by_rating(self, platform):
        album = (AlbumBuilder()
                 .near_label("Mole Antonelliana", radius_km=0.3)
                 .order_by_rating().build())
        ordered = album.links(platform.evaluator())
        assert ordered[0] == url(platform, 1)  # rating 5 first

    def test_taken_between(self, platform):
        album = AlbumBuilder().taken_between(1500, 3500).build()
        assert links(platform, album) == {
            url(platform, 2), url(platform, 3),
        }

    def test_inverted_window_rejected(self):
        with pytest.raises(AlbumBuilderError):
            AlbumBuilder().taken_between(10, 5)


class TestConceptAndText:
    def test_about_concept(self, platform):
        album = (AlbumBuilder()
                 .about_concept(DBPR.Mole_Antonelliana).build())
        result = links(platform, album)
        assert url(platform, 1) in result
        assert url(platform, 3) not in result

    def test_titled_like_fulltext(self, platform):
        album = AlbumBuilder().titled_like("periferia").build()
        assert links(platform, album) == {url(platform, 3)}

    def test_limit(self, platform):
        album = (AlbumBuilder()
                 .near_label("Mole Antonelliana", radius_km=0.3)
                 .order_by_rating().limit(1).build())
        assert album.links(platform.evaluator()) == [url(platform, 1)]

    def test_invalid_limit(self):
        with pytest.raises(AlbumBuilderError):
            AlbumBuilder().limit(0)


class TestComposition:
    def test_everything_together(self, platform):
        album = (AlbumBuilder("the works")
                 .near_label("Mole Antonelliana", radius_km=0.3)
                 .by_friend_of("oscar")
                 .min_rating(1)
                 .taken_between(0, 1500)
                 .order_by_rating()
                 .limit(5)
                 .build())
        assert links(platform, album) == {url(platform, 1)}

    def test_sparql_is_single_select(self, platform):
        query = (AlbumBuilder()
                 .near_label("Mole Antonelliana")
                 .by_user("walter").sparql())
        assert query.count("SELECT") == 1
        # and it parses
        from repro.sparql import parse_query

        parse_query(query)
