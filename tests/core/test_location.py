"""Location analysis tests (paper §2.2.1)."""

import pytest

from repro.context import ContextPlatform, TripleTag
from repro.core import LocationAnalyzer
from repro.core.location import COMMERCIAL_CATEGORIES
from repro.lod import build_lod_corpus, poi_by_key
from repro.lod.geonames import geonames_uri
from repro.rdf import DBPR, FOAF, OWL, RDF, TL_USER
from repro.sparql import Point

MOLE = Point(7.6934, 45.0692)
NEAR_MOLE = Point(7.6930, 45.0690)


@pytest.fixture(scope="module")
def corpus():
    return build_lod_corpus()


@pytest.fixture
def setup(corpus):
    context = ContextPlatform()
    context.register_user("oscar", "Oscar Rodriguez")
    context.register_user(
        "walter", "Walter Goix",
        external_accounts=("http://twitter.com/wgoix",),
    )
    context.add_friendship("oscar", "walter")
    analyzer = LocationAnalyzer(corpus, context.gazetteer)
    return context, analyzer


class TestSenderContextualization:
    def test_geonames_reference_attached(self, setup):
        context_platform, analyzer = setup
        context_platform.report_position("oscar", 100, MOLE)
        context = context_platform.contextualize("oscar", 110)
        analysis = analyzer.analyze(context)
        assert analysis.geonames_resource == geonames_uri(3165524)

    def test_geonames_reference_is_valid_in_graph(self, setup, corpus):
        # "which validity is guaranteed by the locationing process"
        context_platform, analyzer = setup
        context_platform.report_position("oscar", 100, MOLE)
        context = context_platform.contextualize("oscar", 110)
        analysis = analyzer.analyze(context)
        assert corpus.geonames.resource_exists(
            analysis.geonames_resource
        )

    def test_no_location_no_reference(self, setup):
        context_platform, analyzer = setup
        context = context_platform.contextualize("oscar", 100)
        analysis = analyzer.analyze(context)
        assert analysis.geonames_resource is None


class TestBuddyResources:
    def test_local_descriptive_resource(self, setup):
        context_platform, analyzer = setup
        context_platform.report_position("oscar", 100, MOLE)
        context_platform.report_position("walter", 100, NEAR_MOLE)
        context = context_platform.contextualize("oscar", 110)
        analysis = analyzer.analyze(context)
        assert analysis.buddy_resources == [TL_USER.walter]
        triples = set(analysis.triples)
        assert (TL_USER.walter, RDF.type, FOAF.Person) in triples
        assert any(
            p == FOAF.account for _, p, _ in triples
        )  # declared external accounts linked

    def test_external_linking_off_by_default(self, setup):
        _, analyzer = setup
        assert analyzer.link_buddies_externally is False
        from repro.context.models import Buddy

        _, triples = analyzer.buddy_resource(
            Buddy("walter", "Walter Goix")
        )
        assert not any(p == OWL.sameAs for _, p, _ in triples)

    def test_external_linking_opt_in(self, corpus):
        analyzer = LocationAnalyzer(
            corpus, link_buddies_externally=True
        )
        from repro.context.models import Buddy

        # a buddy whose name collides with a LOD entity gets sameAs links
        _, triples = analyzer.buddy_resource(
            Buddy("leo", "Leonardo da Vinci")
        )
        assert any(p == OWL.sameAs for _, p, _ in triples)


class TestPoiResolution:
    def test_monument_resolved(self, setup):
        _, analyzer = setup
        gazetteer = analyzer.gazetteer
        mole = poi_by_key("Mole_Antonelliana")
        recs_id = gazetteer.recs_id_for(mole)
        tag = TripleTag("poi", "recs_id", str(recs_id))
        assert analyzer.resolve_poi_tag(tag) == DBPR.Mole_Antonelliana

    def test_commercial_poi_excluded(self, setup):
        _, analyzer = setup
        restaurant = poi_by_key("Ristorante_Del_Cambio")
        assert restaurant.category in COMMERCIAL_CATEGORIES
        assert analyzer.resolve_poi(restaurant) is None

    def test_unknown_recs_id(self, setup):
        _, analyzer = setup
        assert analyzer.resolve_poi_tag(
            TripleTag("poi", "recs_id", "99999")
        ) is None

    def test_malformed_recs_id(self, setup):
        _, analyzer = setup
        assert analyzer.resolve_poi_tag(
            TripleTag("poi", "recs_id", "abc")
        ) is None

    def test_poi_tag_through_analyze(self, setup):
        context_platform, analyzer = setup
        context_platform.report_position("oscar", 100, MOLE)
        context = context_platform.contextualize("oscar", 110)
        mole = poi_by_key("Mole_Antonelliana")
        tag = TripleTag(
            "poi", "recs_id",
            str(analyzer.gazetteer.recs_id_for(mole)),
        )
        analysis = analyzer.analyze(context, (tag,))
        assert analysis.poi_resource == DBPR.Mole_Antonelliana

    def test_station_category_resolved(self, setup):
        _, analyzer = setup
        station = poi_by_key("Porta_Nuova_railway_station")
        assert analyzer.resolve_poi(station) == \
            DBPR.Porta_Nuova_railway_station
