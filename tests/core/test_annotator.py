"""Tests for the Figure 1 annotation pipeline."""

import pytest

from repro.core import Reason, build_default_annotator
from repro.lod import build_lod_corpus
from repro.lod.geonames import geonames_uri
from repro.rdf import DBPR


@pytest.fixture(scope="module")
def annotator():
    return build_default_annotator(build_lod_corpus())


class TestTextProcessing:
    def test_language_detected(self, annotator):
        result = annotator.annotate(
            "Tramonto sulla Mole Antonelliana a Torino"
        )
        assert result.language == "it"

    def test_language_override(self, annotator):
        result = annotator.annotate("Torino", language="it")
        assert result.language == "it"

    def test_np_lemmas_extracted(self, annotator):
        result = annotator.annotate("a sunny afternoon in Turin")
        assert "Turin" in result.np_lemmas

    def test_multiword_np(self, annotator):
        result = annotator.annotate(
            "una foto della mole antonelliana stasera"
        )
        assert "Mole Antonelliana" in result.np_lemmas

    def test_plain_tags_merged(self, annotator):
        result = annotator.annotate("a nice view", tags=["colosseum"])
        assert "colosseum" in result.words

    def test_words_unique_case_insensitive(self, annotator):
        result = annotator.annotate("Turin by night", tags=["turin"])
        lowered = [w.lower() for w in result.words]
        assert lowered.count("turin") == 1

    def test_frequency_fallback(self, annotator):
        result = annotator.annotate(
            "sunset sunset sunset over the river"
        )
        assert "sunset" in result.frequency_words
        assert "sunset" in result.words

    def test_frequency_fallback_disablable(self):
        annotator = build_default_annotator(
            build_lod_corpus(), term_freq_top_k=0
        )
        result = annotator.annotate("sunset sunset sunset")
        assert result.frequency_words == []


class TestAnnotation:
    def test_city_annotated_with_geonames(self, annotator):
        result = annotator.annotate("a sunny afternoon in Turin")
        turin = next(a for a in result.annotations if a.word == "Turin")
        assert turin.resource == geonames_uri(3165524)
        assert turin.graph == "geonames"

    def test_monument_annotated_with_dbpedia(self, annotator):
        result = annotator.annotate(
            "una foto della mole antonelliana stasera", language="it"
        )
        mole = next(
            a for a in result.annotations
            if a.word == "Mole Antonelliana"
        )
        assert mole.resource == DBPR.Mole_Antonelliana
        assert mole.graph == "dbpedia"

    def test_redirect_resolved_through_pipeline(self, annotator):
        # the paper's own example: the "Coliseum" keyword hooks the
        # Roman Colosseum resource
        result = annotator.annotate("a view", tags=["Coliseum"])
        outcome = result.outcome_for("Coliseum")
        assert outcome is not None
        assert outcome.annotated
        assert outcome.chosen.resource == DBPR.Colosseum

    def test_ambiguous_word_not_annotated(self, annotator):
        # "Paris" mid-title: Geonames resolves the city uniquely, so
        # check a genuinely ambiguous non-geo word instead
        result = annotator.annotate("thinking about Leonardo tonight")
        outcome = result.outcome_for("Leonardo")
        if outcome is not None and outcome.reason is Reason.AMBIGUOUS:
            assert not outcome.annotated

    def test_unknown_word_no_candidates(self, annotator):
        result = annotator.annotate("Zxqwv strange word")
        outcome = result.outcome_for("Zxqwv")
        assert outcome is not None
        assert outcome.reason in (Reason.NO_CANDIDATES,
                                  Reason.ALL_DISCARDED)
        assert not result.annotated_words or "Zxqwv" not in \
            result.annotated_words

    def test_full_text_adds_split_multiword(self, annotator):
        # title lowercase so NP extraction misses it; full-text resolvers
        # recover the entity from the whole-title context
        result = annotator.annotate("by the eiffel tower at dusk")
        assert any(
            str(a.resource).endswith("Eiffel_Tower")
            or "Eiffel" in str(a.resource)
            for a in result.annotations
        )

    def test_full_text_disablable(self):
        annotator = build_default_annotator(
            build_lod_corpus(), use_full_text=False
        )
        result = annotator.annotate("by the eiffel tower at dusk")
        assert result.broker_result.full_text == []

    def test_empty_title(self, annotator):
        result = annotator.annotate("", tags=[])
        assert result.annotations == []
        assert result.words == []

    def test_tags_only(self, annotator):
        result = annotator.annotate("", tags=["Colosseum", "rome"])
        assert "Colosseum" in result.words
        assert result.annotated_words


class TestOutcomeBookkeeping:
    def test_every_word_has_an_outcome(self, annotator):
        result = annotator.annotate(
            "Sunset over Turin", tags=["mole", "random_zz"]
        )
        for word in result.words:
            assert result.outcome_for(word) is not None

    def test_annotations_subset_of_words(self, annotator):
        result = annotator.annotate("Turin and Rome in one day")
        assert set(result.annotated_words) <= {
            w for w in result.words
        } | {c.word for c in (result.broker_result.full_text or [])}
