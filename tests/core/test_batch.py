"""BatchAnnotator tests: checkpoint ordering, parallel fan-out,
watermark resume semantics, and resolver-fault degradation.

(The original sequential happy-path tests live in
``tests/core/test_extensions.py``; this module pins the bugs fixed in
the resilience PR and the parallel/sequential equivalence contract.)
"""

import time
from types import SimpleNamespace

import pytest

from repro.core import BatchAnnotator
from repro.core.annotator import SemanticAnnotator
from repro.core.filtering import SemanticFilter
from repro.lod import build_lod_corpus
from repro.platform import Platform
from repro.rdf import Graph, URIRef
from repro.resolvers import (
    FlakyResolver,
    RetryPolicy,
    SemanticBroker,
    default_resolvers,
    wrap_resilient,
)
from repro.workloads import (
    WorkloadConfig,
    generate_workload,
    populate_platform,
)


# ----------------------------------------------------------------------
# Lightweight fakes: exact control over pid order and annotate timing
# ----------------------------------------------------------------------
class FakeAnnotator:
    """Annotates every title with one fixed resource; optionally sleeps
    per pid (to force out-of-order completion) or fails specific pids."""

    def __init__(self, delays=None, failing=()):
        self.delays = delays or {}
        self.failing = set(failing)
        self.broker = None

    def annotate(self, title, tags):
        pid = int(title)  # the fake items carry their pid as title
        if pid in self.delays:
            time.sleep(self.delays[pid])
        if pid in self.failing:
            raise RuntimeError(f"fake failure for {pid}")
        return SimpleNamespace(
            annotations=[SimpleNamespace(
                resource=URIRef(f"urn:concept:{pid}")
            )],
            broker_result=None,
        )


class FakePlatform:
    """A platform stub whose ``contents()`` order is programmable."""

    def __init__(self, pids, order=None, **annotator_kwargs):
        self._items = {
            pid: SimpleNamespace(
                pid=pid,
                title=str(pid),
                plain_tags=[],
                resource=URIRef(f"urn:content:{pid}"),
            )
            for pid in pids
        }
        self._order = list(order) if order is not None else list(pids)
        self.annotator = FakeAnnotator(**annotator_kwargs)

    def contents(self):
        return [self._items[pid] for pid in self._order]

    def content(self, pid):
        return self._items[pid]


class TestTriplesAdded:
    def test_duplicate_annotations_not_double_counted(self):
        # triples_added is computed with Graph.insert()'s atomic
        # newness answer — the old len()-before/len()-after straddle
        # (the EF004 lint finding) measured the same thing only by
        # racing the store's statistics
        platform = FakePlatform([1, 2, 3])
        target = Graph()
        first = BatchAnnotator(platform, target, workers=1)
        assert first.run().triples_added == 3
        # re-annotating the same catalog into the same target adds
        # nothing: every insert() reports the triple as already present
        second = BatchAnnotator(platform, target, workers=1)
        assert second.run().triples_added == 0
        assert len(target) == 3

    def test_insert_reports_newness(self):
        g = Graph()
        triple = (URIRef("urn:s"), URIRef("urn:p"), URIRef("urn:o"))
        assert g.insert(triple) is True
        assert g.insert(triple) is False
        assert len(g) == 1


class TestCheckpointOrdering:
    def test_pending_pids_sorted_despite_platform_order(self):
        platform = FakePlatform(
            [1, 2, 3, 4, 5], order=[4, 1, 5, 2, 3]
        )
        batch = BatchAnnotator(platform)
        assert batch.pending_pids() == [1, 2, 3, 4, 5]

    def test_resume_on_shuffled_platform_processes_everything(self):
        """Regression: with an unsorted platform the old per-item
        ``last_pid = pid`` checkpoint skipped unprocessed smaller pids
        on resume."""
        order = [4, 1, 5, 2, 6, 3]
        platform = FakePlatform([1, 2, 3, 4, 5, 6], order=order)
        target = Graph()
        batch = BatchAnnotator(platform, target, batch_size=2)
        batch.run(max_items=3)
        assert batch.checkpoint.last_pid == 3
        stats = batch.run()  # resume
        assert stats.processed == 6
        assert batch.done
        for pid in [1, 2, 3, 4, 5, 6]:
            assert any(
                s == URIRef(f"urn:content:{pid}") for s, _, _ in target
            ), f"pid {pid} was skipped"

    def test_watermark_holds_back_out_of_order_completitems(self):
        """pid 1 finishes last; the checkpoint must not advance past it
        while faster later pids complete."""
        platform = FakePlatform(
            [1, 2, 3, 4, 5, 6], delays={1: 0.05}
        )
        seen = []
        batch = BatchAnnotator(
            platform, batch_size=1, workers=4,
            on_progress=lambda cp: seen.append(cp.last_pid),
        )
        stats = batch.run()
        assert stats.processed == 6
        # watermark advances contiguously: one callback per item, in
        # ascending pid order, exactly as a sequential run would fire
        assert seen == [1, 2, 3, 4, 5, 6]
        assert batch.checkpoint.last_pid == 6


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def catalog(self):
        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=5, n_contents=40, cities=("Turin",), seed=11,
        ))
        populate_platform(platform, workload)
        return platform

    def test_same_stats_and_triples(self, catalog):
        seq_graph, par_graph = Graph(), Graph()
        seq = BatchAnnotator(catalog, seq_graph, batch_size=10)
        par = BatchAnnotator(
            catalog, par_graph, batch_size=10, workers=4
        )
        seq_stats = seq.run()
        par_stats = par.run()
        assert seq_stats.summary() == par_stats.summary()
        assert seq_stats.failures == par_stats.failures
        assert set(seq_graph) == set(par_graph)
        assert len(seq_graph) == len(par_graph)

    def test_parallel_resume_matches_sequential(self, catalog):
        seq_graph, par_graph = Graph(), Graph()
        seq = BatchAnnotator(catalog, seq_graph, batch_size=10)
        seq_stats = seq.run()

        par = BatchAnnotator(
            catalog, par_graph, batch_size=10, workers=4
        )
        par.run(max_items=15)
        assert not par.done
        par_stats = par.run()  # resume to completion
        assert par.done
        assert par_stats.summary() == seq_stats.summary()
        assert set(seq_graph) == set(par_graph)

    def test_progress_callbacks_identical(self, catalog):
        def collect(workers):
            seen = []
            batch = BatchAnnotator(
                catalog, Graph(), batch_size=7, workers=workers,
                on_progress=lambda cp: seen.append(
                    (cp.last_pid, cp.stats.processed)
                ),
            )
            batch.run()
            return seen

        assert collect(1) == collect(4)

    def test_failures_recorded_in_pid_order(self):
        platform = FakePlatform(
            list(range(1, 13)), failing=[3, 7, 11],
            delays={3: 0.02},
        )
        batch = BatchAnnotator(platform, batch_size=4, workers=4)
        stats = batch.run()
        assert stats.processed == 12
        assert [pid for pid, _ in stats.failures] == [3, 7, 11]
        assert all("fake failure" in msg for _, msg in stats.failures)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            BatchAnnotator(FakePlatform([1]), workers=0)


class TestFaultDegradation:
    """Acceptance: one resolver failing 100% of calls, 100-item batch —
    every item resolvable by the remaining resolvers still succeeds,
    the stats report the degradation, and no exception escapes."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return build_lod_corpus()

    def _platform(self, n=100):
        platform = Platform()
        workload = generate_workload(WorkloadConfig(
            n_users=10, n_contents=n, cities=("Turin",), seed=5,
        ))
        populate_platform(platform, workload)
        return platform

    def _annotator(self, corpus, resolvers):
        return SemanticAnnotator(
            SemanticBroker(resolvers), SemanticFilter(corpus)
        )

    def test_batch_survives_dead_resolver(self, corpus):
        # reference: the same catalog annotated *without* DBpedia —
        # what "every item resolvable by the remaining resolvers" means
        reference = self._platform()
        reference.annotator = self._annotator(corpus, [
            r for r in default_resolvers(corpus) if r.name != "dbpedia"
        ])
        ref_graph = Graph()
        ref_stats = BatchAnnotator(reference, ref_graph).run()

        # the run under test: DBpedia present but failing 100% of
        # calls behind the full resilience layer, 4 workers
        broken = self._platform()
        resolvers = [
            FlakyResolver(r, failure_rate=1.0, seed=1)
            if r.name == "dbpedia" else r
            for r in default_resolvers(corpus)
        ]
        broken.annotator = self._annotator(corpus, wrap_resilient(
            resolvers,
            retry=RetryPolicy(attempts=2, base_delay=0.0, jitter=0.0),
            failure_threshold=5,
            reset_timeout=3600.0,
        ))
        graph = Graph()
        batch = BatchAnnotator(broken, graph, workers=4)
        stats = batch.run()  # must not raise

        assert stats.processed == 100
        assert stats.failed == 0
        assert stats.annotated == ref_stats.annotated
        assert set(graph) == set(ref_graph)

        # the degradation is visible, not silent
        assert stats.degraded_items == 100
        assert stats.resolver_failures >= 100
        report = stats.resolver_report["dbpedia"]
        assert report.successes == 0
        assert report.failures > 0
        assert report.breaker_trips >= 1
        assert stats.breaker_trips >= 1

    def test_degraded_flag_on_broker_result(self, corpus):
        resolvers = [
            FlakyResolver(r, failure_rate=1.0)
            if r.name == "dbpedia" else r
            for r in default_resolvers(corpus)
        ]
        broker = SemanticBroker(resolvers)
        result = broker.resolve(["Turin"])
        assert result.degraded
        assert result.failed_resolvers() == ["dbpedia"]
        assert result.per_word["Turin"]  # healthy candidates survived
