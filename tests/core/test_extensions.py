"""Tests for the paper's future-work extensions: WordNet-style noun
pruning, batch annotation, user-assisted disambiguation."""

import pytest

from repro.core import (
    BatchAnnotator,
    Reason,
    UserAssistedDisambiguator,
    build_default_annotator,
)
from repro.core.filtering import FilterOutcome
from repro.lod import build_lod_corpus
from repro.nlp import is_concrete_noun, prune_abstract, sense_of
from repro.platform import Capture, Platform
from repro.rdf import DBPR, DCTERMS, Graph
from repro.resolvers import Candidate
from repro.sparql import Point

NEAR_MOLE = Point(7.6930, 45.0690)


class TestSenses:
    def test_paper_examples_are_abstract(self):
        # the paper's own examples of what to discard
        assert is_concrete_noun("difference", "en") is False
        assert is_concrete_noun("joyness", "en") is False

    def test_concrete_nouns(self):
        assert is_concrete_noun("tower", "en") is True
        assert is_concrete_noun("piazza", "it") is True

    def test_unknown_returns_none(self):
        assert is_concrete_noun("zorgon", "en") is None

    def test_sense_of(self):
        sense = sense_of("tramonto", "it")
        assert sense.lexfile == "noun.event"
        assert not sense.is_concrete

    def test_prune_keeps_unknown_by_default(self):
        kept = prune_abstract(["tower", "difference", "zorgon"], "en")
        assert kept == ["tower", "zorgon"]

    def test_prune_drop_unknown(self):
        kept = prune_abstract(
            ["tower", "zorgon"], "en", keep_unknown=False
        )
        assert kept == ["tower"]

    def test_annotator_pruning_option(self):
        corpus = build_lod_corpus()
        pruning = build_default_annotator(
            corpus, prune_abstract_nouns=True
        )
        plain = build_default_annotator(corpus)
        title = "tramonto tramonto tramonto sul fiume"
        assert "tramonto" in plain.annotate(title).frequency_words
        assert "tramonto" not in pruning.annotate(title).frequency_words

    def test_pruning_keeps_concrete_fallback_words(self):
        annotator = build_default_annotator(
            build_lod_corpus(), prune_abstract_nouns=True
        )
        result = annotator.annotate("torre torre torre sul fiume")
        assert "torre" in result.frequency_words


class TestBatchAnnotator:
    @pytest.fixture
    def loaded_platform(self):
        platform = Platform()
        platform.register_user("walter", "Walter Goix")
        for i in range(7):
            platform.upload(Capture(
                username="walter",
                title="Tramonto sulla Mole Antonelliana",
                tags=("mole",),
                timestamp=1000 + i,
                point=NEAR_MOLE,
            ))
        return platform

    def test_full_run(self, loaded_platform):
        target = Graph()
        batch = BatchAnnotator(loaded_platform, target, batch_size=3)
        stats = batch.run()
        assert stats.processed == 7
        assert stats.annotated == 7
        assert stats.failed == 0
        assert batch.done
        assert (
            loaded_platform.content(1).resource,
            DCTERMS.subject,
            DBPR.Mole_Antonelliana,
        ) in target

    def test_resume_from_checkpoint(self, loaded_platform):
        batch = BatchAnnotator(loaded_platform, batch_size=2)
        batch.run(max_items=3)
        assert batch.checkpoint.last_pid == 3
        assert not batch.done
        stats = batch.run()  # resumes
        assert stats.processed == 7
        assert batch.done

    def test_progress_callbacks(self, loaded_platform):
        seen = []
        batch = BatchAnnotator(
            loaded_platform, batch_size=3,
            on_progress=lambda cp: seen.append(cp.last_pid),
        )
        batch.run()
        # 7 items, batch size 3 -> callbacks at 3, 6 and final 7
        assert seen == [3, 6, 7]

    def test_failure_isolated(self, loaded_platform):
        class Exploding:
            def annotate(self, title, tags):
                raise RuntimeError("boom")

        loaded_platform.annotator = Exploding()
        batch = BatchAnnotator(loaded_platform)
        stats = batch.run(max_items=2)
        assert stats.failed == 2
        assert stats.processed == 2
        assert batch.checkpoint.last_pid == 2  # still advanced

    def test_invalid_batch_size(self, loaded_platform):
        with pytest.raises(ValueError):
            BatchAnnotator(loaded_platform, batch_size=0)


def _ambiguous_outcome():
    paris = Candidate(
        resource=DBPR.Paris, label="Paris", score=0.9,
        resolver="dbpedia", word="Paris",
    )
    myth = Candidate(
        resource=DBPR["Paris_(mythology)"], label="Paris (mythology)",
        score=0.7, resolver="dbpedia", word="Paris",
    )
    return FilterOutcome(
        word="Paris", reason=Reason.AMBIGUOUS,
        survivors=[paris, myth],
    )


class TestUserAssistedDisambiguation:
    def test_prompt_only_for_ambiguous(self):
        disambiguator = UserAssistedDisambiguator()
        outcome = _ambiguous_outcome()
        prompt = disambiguator.prompt_for(outcome)
        assert prompt is not None
        assert prompt.word == "Paris"
        assert len(prompt.options) == 2
        assert "dbpedia" in prompt.option_labels()[0]

        annotated = FilterOutcome("x", Reason.ANNOTATED)
        assert disambiguator.prompt_for(annotated) is None

    def test_learned_prior_resolves(self):
        disambiguator = UserAssistedDisambiguator()
        outcome = _ambiguous_outcome()
        assert disambiguator.resolve(outcome).reason is Reason.AMBIGUOUS
        disambiguator.record_choice("Paris", DBPR.Paris)
        resolved = disambiguator.resolve(outcome)
        assert resolved.reason is Reason.ANNOTATED
        assert resolved.chosen.resource == DBPR.Paris

    def test_case_insensitive_words(self):
        disambiguator = UserAssistedDisambiguator()
        disambiguator.record_choice("paris", DBPR.Paris)
        assert disambiguator.learned_resource("PARIS") == DBPR.Paris

    def test_tie_stays_ambiguous(self):
        disambiguator = UserAssistedDisambiguator()
        disambiguator.record_choice("Paris", DBPR.Paris)
        disambiguator.record_choice("Paris", DBPR["Paris_(mythology)"])
        assert disambiguator.learned_resource("Paris") is None

    def test_majority_wins(self):
        disambiguator = UserAssistedDisambiguator()
        disambiguator.record_choice("Paris", DBPR.Paris)
        disambiguator.record_choice("Paris", DBPR.Paris)
        disambiguator.record_choice("Paris", DBPR["Paris_(mythology)"])
        assert disambiguator.learned_resource("Paris") == DBPR.Paris

    def test_min_confidence(self):
        disambiguator = UserAssistedDisambiguator(min_confidence=3)
        disambiguator.record_choice("Paris", DBPR.Paris)
        assert disambiguator.learned_resource("Paris") is None
        disambiguator.record_choice("Paris", DBPR.Paris)
        disambiguator.record_choice("Paris", DBPR.Paris)
        assert disambiguator.learned_resource("Paris") == DBPR.Paris

    def test_learned_resource_not_among_survivors(self):
        disambiguator = UserAssistedDisambiguator()
        disambiguator.record_choice("Paris", DBPR.Rome)  # odd pick
        outcome = disambiguator.resolve(_ambiguous_outcome())
        assert outcome.reason is Reason.AMBIGUOUS

    def test_accuracy_evaluation(self):
        disambiguator = UserAssistedDisambiguator()
        disambiguator.record_choice("Paris", DBPR.Paris)
        disambiguator.record_choice("Rome", DBPR.Turin)  # wrong
        correct, total = disambiguator.accuracy_against(
            {"Paris": DBPR.Paris, "Rome": DBPR.Rome, "Milan": DBPR.Milan}
        )
        assert (correct, total) == (1, 2)

    def test_invalid_min_confidence(self):
        with pytest.raises(ValueError):
            UserAssistedDisambiguator(min_confidence=0)
